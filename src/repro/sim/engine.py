"""The discrete-event engine.

Processes are generators.  Yield semantics:

* ``yield <number>`` — suspend for that many cycles.
* ``yield <Event>`` — suspend until the event fires; the yield expression
  evaluates to the event's value.  If the event *failed*, the exception is
  thrown into the generator at the yield point instead.

The engine guarantees that wakeups are processed in non-decreasing time
order, which is what makes the passive (analytic) resource models in
:mod:`repro.mem` causally correct: every resource reservation is issued at a
simulation time no earlier than any previously issued reservation's time.

**Failure model.**  An exception raised inside a process generator fails
that process's completion event instead of corrupting whichever callback
happened to resume it.  Waiting processes receive the exception at their
yield point (and may catch it); a failure no process handles is re-raised
by :meth:`Engine.run` with the failing process's name attached, after the
event queue drains.  A drained queue with live (blocked) processes is a
deadlock and raises :class:`~repro.errors.SimulationHang` with a diagnostic
dump; livelock and budget overruns are policed by an attachable
:class:`~repro.sim.watchdog.Watchdog`.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Dict, Generator, Iterable, List, Optional

from ..errors import ProcessError, SimulationError, SimulationHang
from ..obs import Counter
from .events import Event

ProcessGenerator = Generator[Any, Any, Any]

#: Recycled `_Entry` objects kept per engine; bounds pool memory while
#: covering the steady-state wakeup churn of even wide machines.
_POOL_LIMIT = 256


class _Entry:
    """One scheduled wakeup on the event queue.

    Heap entries compare on ``(when, seq)`` *only* — the payload (a
    callback, or a process plus its resume value/exception) never
    participates in ordering, so equal-time entries can never attempt to
    compare callables.  ``seq`` is unique and monotone, making the order
    total and FIFO within a cycle.

    An entry carries either ``callback`` (generic scheduled work) or
    ``process`` (a resume with ``value``/``exc``); keeping the resume
    payload in slots instead of closing over it removes the per-dispatch
    lambda allocation the engine previously paid, and lets dispatched
    entries be pooled and reused.
    """

    __slots__ = ("when", "seq", "callback", "process", "value", "exc")

    def __init__(self) -> None:
        self.when = 0.0
        self.seq = 0
        self.callback = None
        self.process: Optional["Process"] = None
        self.value: Any = None
        self.exc: Optional[BaseException] = None

    def __lt__(self, other: "_Entry") -> bool:
        if self.when != other.when:
            return self.when < other.when
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        payload = (f"process={self.process.name!r}" if self.process is not None
                   else f"callback={self.callback!r}")
        return f"_Entry(when={self.when}, seq={self.seq}, {payload})"


class Process(Event):
    """A running process; it is itself an event that fires on completion."""

    __slots__ = ("_generator", "_engine", "name", "waiting_on", "_on_wait",
                 "_halted")

    def __init__(self, engine: "Engine", generator: ProcessGenerator,
                 name: str = "") -> None:
        super().__init__()
        self._generator = generator
        self._engine = engine
        self.name = name or getattr(generator, "__name__", "process")
        self.waiting_on: Any = None
        self._halted = False
        # One bound method for the lifetime of the process instead of a
        # fresh one per wait (`self._wait_done` allocates on every access).
        self._on_wait = self._wait_done

    def terminate(self) -> None:
        """Fail-stop the process from outside (fault injection).

        Closes the generator (its ``finally`` blocks run), then fires the
        completion event so dependents — close chains, joiners, the
        engine's live-process accounting — advance normally.  Any wakeup
        already scheduled for this process becomes a no-op.  Idempotent,
        and a no-op on a process that already finished.
        """
        if self.triggered:
            return
        self._halted = True
        self.waiting_on = None
        self._generator.close()
        self.succeed(None)

    def suspend(self) -> None:
        """Stall the process forever (fault injection's hang mode).

        Unlike :meth:`terminate` the process never completes: the engine
        keeps counting it live, so once the event queue drains the run
        reports a deadlock (:class:`~repro.errors.SimulationHang`) with
        this process in the diagnostics — exactly how a wedged hardware
        walker would surface through the watchdog.
        """
        if self.triggered:
            return
        self._halted = True
        self.waiting_on = ("suspended", None)

    def _resume(self, value: Any = None, exc: Optional[BaseException] = None,
                ) -> None:
        if self._halted:
            # A stale wakeup (scheduled before a fault halted us): the
            # fault already decided this process's fate.
            return
        engine = self._engine
        self.waiting_on = None
        try:
            if exc is not None:
                engine._mark_failure_handled(exc)
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Exception as error:
            engine._process_failed(self, error)
            return
        if isinstance(target, Event):
            self.waiting_on = target
            target.add_callback(self._on_wait)
        elif isinstance(target, (int, float)):
            if target < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {target}")
            self.waiting_on = ("delay", engine.now + target)
            engine._schedule_resume_at(self, engine.now + target, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}")

    def _wait_done(self, event: Event) -> None:
        if event.failed:
            self._engine._schedule_resume_exc(self, event.exception)
        else:
            self._engine._schedule_resume(self, event.value)

    def _describe_wait(self) -> str:
        target = self.waiting_on
        if target is None:
            return "runnable"
        if isinstance(target, tuple) and target and target[0] == "delay":
            return f"sleeping until t={target[1]}"
        if isinstance(target, tuple) and target and target[0] == "suspended":
            return "suspended (stalled by fault injection)"
        if isinstance(target, Process):
            return f"waiting on process {target.name!r}"
        return f"waiting on {type(target).__name__}"


class _Failure:
    """Bookkeeping for one process failure (handled = thrown into a waiter)."""

    __slots__ = ("process", "error", "handled")

    def __init__(self, process: Process, error: BaseException) -> None:
        self.process = process
        self.error = error
        self.handled = False


class Engine:
    """Event queue and clock.

    Scheduling is split into two structures chosen by target time:

    * ``_queue`` — a heap of :class:`_Entry` objects for future times;
    * ``_batch`` — a FIFO of entries for the *current* cycle.  Most
      wakeups (event callbacks resuming a waiter "now") land here, at
      O(1) append/popleft instead of O(log n) heap churn.

    The dispatch order is exactly global ``(when, seq)`` order: entries
    already in the heap at the current time were necessarily scheduled
    earlier (lower ``seq``) than anything appended to the batch, so the
    run loop drains same-time heap entries before batch entries, and the
    batch itself is FIFO.
    """

    def __init__(self, detect_deadlock: bool = True) -> None:
        self.now: float = 0.0
        self._queue: List[_Entry] = []
        self._batch: Deque[_Entry] = deque()
        self._pool: List[_Entry] = []
        self._sequence = 0
        self._active_processes = 0
        self._live: Dict[int, Process] = {}
        self._failures: List[_Failure] = []
        self.dispatched = Counter()  # events popped off the queue, ever
        self.detect_deadlock = detect_deadlock
        self.watchdog = None         # attached via Watchdog.attach()
        #: Resources registered for diagnostic dumps (name -> object with
        #: an optional ``describe()``); see :mod:`repro.sim.watchdog`.
        self.monitored_resources: Dict[str, Any] = {}

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register a generator as a process starting at the current time."""
        process = Process(self, generator, name)
        self._active_processes += 1
        self._live[id(process)] = process
        process.add_callback(self._process_finished)
        self._schedule_resume_at(process, self.now, None)
        return process

    def _process_finished(self, event: Event) -> None:
        self._active_processes -= 1
        self._live.pop(id(event), None)

    def _process_failed(self, process: Process, error: BaseException) -> None:
        self._failures.append(_Failure(process, error))
        process.fail(error)

    def _mark_failure_handled(self, exc: BaseException) -> None:
        for failure in self._failures:
            if failure.error is exc:
                failure.handled = True

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` cycles from now."""
        event = Event()
        self.schedule_at(self.now + delay, lambda: event.succeed(value))
        return event

    def _make_entry(self, when: float) -> _Entry:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self.now}")
        pool = self._pool
        entry = pool.pop() if pool else _Entry()
        self._sequence += 1
        entry.when = when
        entry.seq = self._sequence
        return entry

    def _recycle(self, entry: _Entry) -> None:
        entry.callback = None
        entry.process = None
        entry.value = None
        entry.exc = None
        if len(self._pool) < _POOL_LIMIT:
            self._pool.append(entry)

    def _push(self, entry: _Entry) -> None:
        """File an entry under the two-structure scheme (see class doc)."""
        if entry.when == self.now:
            self._batch.append(entry)
        else:
            heapq.heappush(self._queue, entry)

    def _flush_batch(self) -> None:
        """Spill current-cycle entries back into the heap (an ``until``
        bound is rewinding the clock away from their cycle)."""
        batch = self._batch
        while batch:
            heapq.heappush(self._queue, batch.popleft())

    def schedule_at(self, when: float, callback) -> None:
        """Run ``callback()`` at absolute time ``when``."""
        entry = self._make_entry(when)
        entry.callback = callback
        self._push(entry)

    def _schedule_resume(self, process: Process, value: Any) -> None:
        entry = self._make_entry(self.now)
        entry.process = process
        entry.value = value
        self._push(entry)

    def _schedule_resume_exc(self, process: Process,
                             exc: Optional[BaseException]) -> None:
        entry = self._make_entry(self.now)
        entry.process = process
        entry.exc = exc
        self._push(entry)

    def _schedule_resume_at(self, process: Process, when: float, value: Any) -> None:
        entry = self._make_entry(when)
        entry.process = process
        entry.value = value
        self._push(entry)

    def monitor_resource(self, name: str, resource: Any) -> None:
        """Register a resource for diagnostic dumps (unique-ified name)."""
        key = name
        suffix = 1
        while key in self.monitored_resources:
            suffix += 1
            key = f"{name}#{suffix}"
        self.monitored_resources[key] = resource

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue (optionally stopping at time ``until``).

        Returns the final simulation time.  After the queue drains, any
        unhandled process failure is re-raised (annotated with the process
        name); if failure-free but blocked processes remain, a deadlock is
        reported as :class:`~repro.errors.SimulationHang`.  Neither check
        runs when an ``until`` bound stops the run early — the simulation
        is not over.
        """
        queue = self._queue
        batch = self._batch
        dispatched = self.dispatched
        watchdog = self.watchdog
        heappop = heapq.heappop
        while queue or batch:
            # Same-time heap entries carry lower sequence numbers than
            # anything in the batch (they were scheduled before this cycle
            # began), so they dispatch first; otherwise the batch — all at
            # the current time — precedes any strictly-future heap entry.
            if queue and (not batch or queue[0].when == self.now):
                when = queue[0].when
                if until is not None and when > until:
                    self._flush_batch()
                    self.now = until
                    return self.now
                entry = heappop(queue)
                self.now = when
            else:
                if until is not None and self.now > until:
                    self._flush_batch()
                    self.now = until
                    return self.now
                entry = batch.popleft()
            dispatched.value += 1
            if watchdog is not None:
                watchdog.check(self)
            process = entry.process
            if process is not None:
                value, exc = entry.value, entry.exc
                self._recycle(entry)
                process._resume(value, exc)
            else:
                callback = entry.callback
                self._recycle(entry)
                callback()
        self._raise_unhandled_failures()
        if self.detect_deadlock and self._active_processes > 0:
            raise SimulationHang(
                f"deadlock: {self._active_processes} live process(es) with "
                f"an empty event queue", self.diagnostics())
        return self.now

    def _raise_unhandled_failures(self) -> None:
        for failure in self._failures:
            if failure.handled:
                continue
            failure.handled = True   # a re-run must not re-raise it
            error = failure.error
            note = f"raised in simulation process {failure.process.name!r}"
            if hasattr(error, "add_note"):
                error.add_note(note)
                raise error
            raise ProcessError(f"{note}: {error}",
                               failure.process.name) from error

    def live_processes(self) -> List[Process]:
        """Processes that have started but not yet finished or failed."""
        return list(self._live.values())

    @property
    def pending_events(self) -> int:
        """Scheduled-but-undispatched entries (heap plus current-cycle batch)."""
        return len(self._queue) + len(self._batch)

    def register_into(self, registry, prefix: str = "sim.engine") -> None:
        """Publish event-throughput counters under ``prefix``."""
        registry.register(f"{prefix}.dispatched", self.dispatched)

    def diagnostics(self) -> str:
        """A human-readable dump of engine state (for hang reports)."""
        lines = [f"engine: now={self.now} dispatched={self.dispatched} "
                 f"pending_events={self.pending_events} "
                 f"live_processes={self._active_processes}"]
        for process in self._live.values():
            lines.append(f"  process {process.name!r}: "
                         f"{process._describe_wait()}")
        for entry in sorted(list(self._queue) + list(self._batch))[:8]:
            lines.append(f"  pending event at t={entry.when}")
        for name, resource in self.monitored_resources.items():
            describe = getattr(resource, "describe", None)
            detail = describe() if callable(describe) else repr(resource)
            lines.append(f"  resource {name}: {detail}")
        for failure in self._failures:
            status = "handled" if failure.handled else "unhandled"
            lines.append(f"  failure in {failure.process.name!r} ({status}): "
                         f"{type(failure.error).__name__}: {failure.error}")
        return "\n".join(lines)

    def run_all(self, processes: Iterable[ProcessGenerator]) -> float:
        """Convenience: register each generator and run to completion."""
        for generator in processes:
            self.process(generator)
        return self.run()
