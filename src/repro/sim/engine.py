"""The discrete-event engine.

Processes are generators.  Yield semantics:

* ``yield <number>`` — suspend for that many cycles.
* ``yield <Event>`` — suspend until the event fires; the yield expression
  evaluates to the event's value.

The engine guarantees that wakeups are processed in non-decreasing time
order, which is what makes the passive (analytic) resource models in
:mod:`repro.mem` causally correct: every resource reservation is issued at a
simulation time no earlier than any previously issued reservation's time.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from ..errors import SimulationError
from .events import Event

ProcessGenerator = Generator[Any, Any, Any]


class Process(Event):
    """A running process; it is itself an event that fires on completion."""

    __slots__ = ("_generator", "_engine", "name")

    def __init__(self, engine: "Engine", generator: ProcessGenerator,
                 name: str = "") -> None:
        super().__init__()
        self._generator = generator
        self._engine = engine
        self.name = name or getattr(generator, "__name__", "process")

    def _resume(self, value: Any = None) -> None:
        engine = self._engine
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        if isinstance(target, Event):
            target.add_callback(lambda event: engine._schedule_resume(self, event.value))
        elif isinstance(target, (int, float)):
            if target < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {target}")
            engine._schedule_resume_at(self, engine.now + target, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}")


class Engine:
    """Event queue and clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list = []
        self._sequence = 0
        self._active_processes = 0

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register a generator as a process starting at the current time."""
        process = Process(self, generator, name)
        self._active_processes += 1
        process.add_callback(lambda _e: self._process_finished())
        self._schedule_resume_at(process, self.now, None)
        return process

    def _process_finished(self) -> None:
        self._active_processes -= 1

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` cycles from now."""
        event = Event()
        self.schedule_at(self.now + delay, lambda: event.succeed(value))
        return event

    def schedule_at(self, when: float, callback) -> None:
        """Run ``callback()`` at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self.now}")
        self._sequence += 1
        heapq.heappush(self._queue, (when, self._sequence, callback))

    def _schedule_resume(self, process: Process, value: Any) -> None:
        self._schedule_resume_at(process, self.now, value)

    def _schedule_resume_at(self, process: Process, when: float, value: Any) -> None:
        self.schedule_at(when, lambda: process._resume(value))

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue (optionally stopping at time ``until``).

        Returns the final simulation time.
        """
        queue = self._queue
        while queue:
            when, _seq, callback = queue[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(queue)
            self.now = when
            callback()
        return self.now

    def run_all(self, processes: Iterable[ProcessGenerator]) -> float:
        """Convenience: register each generator and run to completion."""
        for generator in processes:
            self.process(generator)
        return self.run()
