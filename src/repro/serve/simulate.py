"""The open-loop serving simulation: the discrete-event *driver*.

Composes the serving pieces on the discrete-event engine: an arrival
source feeds per-core admission queues round-robin, one server process
per core collects batches through a scheduling policy and holds the
core busy for the calibrated service time, and every completed
request's end-to-end latency (queueing + batching + service) lands in a
:class:`~repro.obs.metrics.Distribution` for tail extraction.

Open loop means arrivals never throttle: the admission queues are sized
to hold the whole request stream, so offered load beyond saturation
builds backlog and latency instead of slowing the source — the regime
the throughput–latency figure exists to show.

**Resilience.**  The happy path above is byte-for-byte the PR 6 serving
simulation.  A run becomes *resilient* only when asked: a ``shed:`` /
``timeout:`` policy wrapper, an explicit ``queue_depth``, or a
:class:`~repro.serve.core.ResilienceConfig` (SLO, fault model,
controller).  Plain runs never touch the resilient code, which is what
keeps fig-serve's output bit-identical to the pre-resilience tree.

**Layering.**  Since the core extraction, every serving *decision* —
admission bounds, shedding, deadline drops, SLO accounting, the
degraded-mode controller — lives in the transport-agnostic
:class:`~repro.serve.core.ServingCore`; this module's resilient
source/server/controller processes are thin drivers that feed it
engine timestamps.  The same core drives the wall-clock
:mod:`repro.live` service, and the committed golden reports pin this
driver's event schedule byte-for-byte across the refactor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ServeError
from ..obs import Counter, StatsRegistry
from ..sim.engine import Engine
from ..sim.resources import BoundedQueue
from .arrivals import (ArrivalProcess, DeterministicArrivals, PoissonArrivals,
                       Request, merge_requests)
from .core import ResilienceConfig, ServeResult, ServingCore, validate_run
from .policies import SchedulingPolicy, admission_depth, request_timeout
from .service import ServiceModel

# Compatibility re-exports: ResilienceConfig/ServeResult moved to
# repro.serve.core with the core extraction; every existing import path
# (`from repro.serve.simulate import ResilienceConfig`) keeps working.
__all__ = [
    "ResilienceConfig", "ServeResult", "build_requests", "run_open_loop",
    "simulate_service",
]

_validate_run = validate_run  # the bulk driver's historical import name


def _source(engine: Engine, requests: Sequence[Request],
            queues: List[BoundedQueue]):
    """Emit each request at its arrival time, round-robin across cores."""
    cores = len(queues)
    for request in requests:
        delay = request.arrival - engine.now
        if delay > 0:
            yield delay
        yield queues[request.seq % cores].put(request)
    for queue in queues:
        queue.close()


def _server(engine: Engine, queue: BoundedQueue, policy: SchedulingPolicy,
            model: ServiceModel, latency, completed, batches,
            busy_cycles):
    """Collect batches through the policy and serve them to completion."""
    while True:
        batch = yield from policy.collect(queue)
        if batch is None:
            return
        cycles = model.cycles_for(len(batch))
        yield cycles
        done = engine.now
        batches.value += 1
        busy_cycles.value += cycles
        for request in batch:
            latency.record(done - request.arrival)
            completed.value += 1


def _resilient_source(engine: Engine, requests: Sequence[Request],
                      queues: List[BoundedQueue], core: ServingCore):
    """The open-loop source with bounded admission.

    Identical yield pattern to :func:`_source` except that an arrival
    finding its core's queue at the admission bound is shed (when a shed
    depth is declared) or raises — the satellite contract that open-loop
    admission must never silently block.
    """
    cores = len(queues)
    try_admit = core.try_admit
    for request in requests:
        delay = request.arrival - engine.now
        if delay > 0:
            yield delay
        queue = queues[request.seq % cores]
        if not try_admit(len(queue), queue.name):
            continue
        yield queue.put(request)
    for queue in queues:
        queue.close()


def _resilient_server(engine: Engine, queue: BoundedQueue,
                      core: ServingCore, capacity):
    """The per-core server under deadlines, faults, and policy swaps.

    Matches :func:`_server` yield-for-yield when no deadline filters and
    no death interrupts a batch — the clean-path bit-parity the bulk
    replay and the fault-rate-zero acceptance check rely on.
    """
    drop_doomed = core.drop_doomed
    cycles_for = capacity.cycles_for
    next_death_after = capacity.next_death_after
    finish_batch = core.finish_batch
    while True:
        # core.active is re-read per batch: the controller swaps it.
        batch = yield from core.active.collect(queue)
        if batch is None:
            core.server_done()
            return
        while batch:
            start = engine.now
            batch = drop_doomed(batch, start, capacity)
            if not batch:
                break
            cycles = cycles_for(len(batch), start)
            death = next_death_after(start)
            if death is not None and death < start + cycles:
                # A walker dies mid-batch: the offload aborts at the
                # death instant and the whole batch re-serves under the
                # degraded capacity (traversals are all-or-nothing).
                yield death - start
                core.record_abort(death - start)
                continue
            yield cycles
            finish_batch(batch, cycles, engine.now)
            break


def _controller_proc(engine: Engine, core: ServingCore):
    """Window tick: hand the core one controller observation per window.

    Runs until every server has drained, so the controller never
    outlives the work by more than one window.
    """
    window = core.controller.spec.window
    while core.servers_live > 0:
        yield window
        core.controller_tick(engine.now)


def simulate_service(requests: Sequence[Request], model: ServiceModel, *,
                     policy: SchedulingPolicy, cores: int,
                     offered: float = 0.0,
                     registry: Optional[StatsRegistry] = None,
                     bulk: bool = False,
                     resilience: Optional[ResilienceConfig] = None,
                     queue_depth: Optional[int] = None) -> ServeResult:
    """Serve a fixed request stream on ``cores`` identical servers.

    ``requests`` must already be in global arrival order (see
    :func:`~repro.serve.arrivals.merge_requests`).  The run is fully
    deterministic: one engine, deterministic dispatch, no randomness
    outside the arrival times baked into ``requests``.

    ``bulk=True`` routes the run through the vectorized array replay
    (:mod:`repro.serve.bulk`), which produces bit-identical results and
    falls back to this discrete-event path whenever event ordering is
    ambiguous (see :class:`~repro.sim.bulk.BulkFallback`).

    ``resilience`` and ``queue_depth`` (and ``shed:``/``timeout:``
    policy wrappers) switch the run onto the resilient source/server
    pair; without them the original plain path runs, untouched.
    """
    validate_run(requests, model, cores)
    if queue_depth is not None and queue_depth < 1:
        raise ServeError(f"queue_depth must be >= 1, got {queue_depth}")
    resilient = (queue_depth is not None
                 or admission_depth(policy) is not None
                 or request_timeout(policy) is not None
                 or (resilience is not None and resilience.active))
    if bulk:
        from ..sim.bulk import BulkFallback
        from .bulk import simulate_service_bulk
        try:
            return simulate_service_bulk(requests, model, policy=policy,
                                         cores=cores, offered=offered,
                                         registry=registry,
                                         resilience=resilience,
                                         queue_depth=queue_depth)
        except BulkFallback:
            pass  # a contended/tied schedule: replay on the DES below
    if resilient:
        return _simulate_resilient(requests, model, policy=policy,
                                   cores=cores, offered=offered,
                                   registry=registry, resilience=resilience,
                                   queue_depth=queue_depth)

    if registry is None:
        registry = StatsRegistry()
    scope = registry.scope("serve")
    latency = scope.distribution("latency")
    completed = scope.counter("completed")
    batches = scope.counter("batches")
    busy_cycles = scope.register("busy_cycles", Counter(0.0))

    engine = Engine()
    # Queues sized to the whole stream keep the source open-loop: an
    # arrival is never back-pressured, overload turns into backlog.
    queues = [BoundedQueue(engine, max(1, len(requests)), name=f"core{i}.admit")
              for i in range(cores)]
    for i, queue in enumerate(queues):
        queue.register_into(registry, f"serve.core{i}.queue")
        engine.monitor_resource(queue.name, queue)
    engine.process(_source(engine, requests, queues), name="serve.source")
    for i, queue in enumerate(queues):
        engine.process(
            _server(engine, queue, policy, model, latency, completed,
                    batches, busy_cycles),
            name=f"serve.core{i}.server")
    makespan = engine.run()
    engine.register_into(registry, "serve.engine")

    return ServeResult(
        label=model.label, policy=policy.name, offered=offered, cores=cores,
        requests=len(requests), completed=int(completed.value),
        makespan=makespan, latency=latency,
        first_arrival=min(request.arrival for request in requests),
        stats=registry.to_dict())


def _simulate_resilient(requests: Sequence[Request], model: ServiceModel, *,
                        policy: SchedulingPolicy, cores: int, offered: float,
                        registry: Optional[StatsRegistry],
                        resilience: Optional[ResilienceConfig],
                        queue_depth: Optional[int]) -> ServeResult:
    """The resilient twin of the plain serving run.

    Same engine, same queue sizing, same per-core layout; the
    :class:`~repro.serve.core.ServingCore` adds bounded admission,
    per-request deadlines, the walker-fault capacity model, and
    (optionally) the degraded-mode controller.  With everything disabled
    but an SLO, the event schedule is identical to the plain path — only
    the in-SLO accounting differs.
    """
    if registry is None:
        registry = StatsRegistry()
    scope = registry.scope("serve")
    core = ServingCore(policy, model, cores, queue_depth=queue_depth,
                       resilience=resilience, scope=scope)

    engine = Engine()
    # Queue capacity stays open-loop-sized; the admission *bound* is
    # enforced by the resilient source (it can tighten mid-run under a
    # controller, which a fixed queue capacity could not express).
    queues = [BoundedQueue(engine, max(1, len(requests)), name=f"core{i}.admit")
              for i in range(cores)]
    for i, queue in enumerate(queues):
        queue.register_into(registry, f"serve.core{i}.queue")
        engine.monitor_resource(queue.name, queue)
    engine.process(_resilient_source(engine, requests, queues, core),
                   name="serve.source")
    for i, queue in enumerate(queues):
        engine.process(
            _resilient_server(engine, queue, core, core.capacities[i]),
            name=f"serve.core{i}.server")
    if core.controller is not None:
        engine.process(_controller_proc(engine, core),
                       name="serve.controller")
    end = engine.run()
    engine.register_into(registry, "serve.engine")

    makespan = core.finalize(end)
    core.check_conservation(len(requests))
    return ServeResult(
        label=model.label, policy=policy.name, offered=offered, cores=cores,
        requests=len(requests), completed=int(core.completed.value),
        makespan=makespan, latency=core.latency,
        first_arrival=min(request.arrival for request in requests),
        stats=registry.to_dict(),
        shed=int(core.shed.value), expired=int(core.expired.value),
        faults=core.fault_total,
        slo=core.slo,
        in_slo=int(core.in_slo.value) if core.in_slo is not None else 0)


def build_requests(rate: float, num_requests: int, keys_per_request: int, *,
                   clients: int = 1, seed: int = 0,
                   arrival: str = "poisson") -> List[Request]:
    """Build a merged open-loop request stream at total rate ``rate``.

    ``clients`` independent streams each emit at ``rate / clients``;
    Poisson streams get per-client seeds derived from ``seed``.  Because
    every stream scales by the same rate, the merged arrival *order* is
    rate-invariant — raising the offered load compresses the same
    pattern, which keeps per-request latency (and so every percentile)
    weakly non-decreasing in load for work-conserving policies.
    """
    if clients < 1:
        raise ServeError(f"need at least one client, got {clients}")
    if num_requests < clients:
        raise ServeError(
            f"need at least one request per client "
            f"({num_requests} requests, {clients} clients)")
    per_client = rate / clients
    base = num_requests // clients
    remainder = num_requests % clients
    streams = []
    for client in range(clients):
        count = base + (1 if client < remainder else 0)
        process: ArrivalProcess
        if arrival == "poisson":
            process = PoissonArrivals(per_client, seed=seed + client)
        elif arrival == "deterministic":
            process = DeterministicArrivals(per_client)
        else:
            raise ServeError(
                f"unknown arrival process {arrival!r}; "
                f"want 'poisson' or 'deterministic'")
        streams.append(process.requests(count, keys_per_request,
                                        client=client))
    return merge_requests(streams)


def run_open_loop(model: ServiceModel, *, rate: float, num_requests: int,
                  policy: SchedulingPolicy, cores: int,
                  clients: int = 1, seed: int = 0,
                  arrival: str = "poisson", bulk: bool = False,
                  resilience: Optional[ResilienceConfig] = None,
                  queue_depth: Optional[int] = None) -> ServeResult:
    """Convenience: build the arrival stream and serve it."""
    requests = build_requests(rate, num_requests, model.keys_per_request,
                              clients=clients, seed=seed, arrival=arrival)
    return simulate_service(requests, model, policy=policy, cores=cores,
                            offered=rate, bulk=bulk, resilience=resilience,
                            queue_depth=queue_depth)
