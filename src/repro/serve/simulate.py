"""The open-loop serving simulation.

Composes the other serving pieces on the discrete-event engine: an
arrival source feeds per-core admission queues round-robin, one server
process per core collects batches through a scheduling policy and holds
the core busy for the calibrated service time, and every completed
request's end-to-end latency (queueing + batching + service) lands in a
:class:`~repro.obs.metrics.Distribution` for tail extraction.

Open loop means arrivals never throttle: the admission queues are sized
to hold the whole request stream, so offered load beyond saturation
builds backlog and latency instead of slowing the source — the regime
the throughput–latency figure exists to show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ServeError
from ..obs import Counter, Distribution, StatsRegistry
from ..sim.engine import Engine
from ..sim.resources import BoundedQueue
from .arrivals import (ArrivalProcess, DeterministicArrivals, PoissonArrivals,
                       Request, merge_requests)
from .policies import SchedulingPolicy
from .service import ServiceModel


@dataclass
class ServeResult:
    """Outcome of one open-loop serving run at one offered load."""

    label: str                  # backend label (from the service model)
    policy: str                 # scheduling policy name
    offered: float              # offered load, requests per kilocycle
    cores: int
    requests: int               # requests offered
    completed: int              # requests served (== requests when drained)
    makespan: float             # cycles until the last completion
    latency: Distribution       # end-to-end request latency, cycles
    first_arrival: float = 0.0  # when the first request arrived
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def achieved(self) -> float:
        """Achieved throughput in requests per kilocycle (saturates at
        service capacity when the offered load exceeds it).

        Measured over the window the system actually had work: from the
        first arrival to the last completion.  Counting the idle lead-in
        before the first request (as an earlier version did) understated
        throughput at low offered loads and small request counts, where
        the lead-in is a visible fraction of the makespan.
        """
        span = self.makespan - self.first_arrival
        if span <= 0:
            return 0.0
        return self.completed * 1000.0 / span

    @property
    def p50(self) -> float:
        return self.latency.p50

    @property
    def p95(self) -> float:
        return self.latency.p95

    @property
    def p99(self) -> float:
        return self.latency.p99


def _source(engine: Engine, requests: Sequence[Request],
            queues: List[BoundedQueue]):
    """Emit each request at its arrival time, round-robin across cores."""
    cores = len(queues)
    for request in requests:
        delay = request.arrival - engine.now
        if delay > 0:
            yield delay
        yield queues[request.seq % cores].put(request)
    for queue in queues:
        queue.close()


def _server(engine: Engine, queue: BoundedQueue, policy: SchedulingPolicy,
            model: ServiceModel, latency: Distribution, completed, batches,
            busy_cycles):
    """Collect batches through the policy and serve them to completion."""
    while True:
        batch = yield from policy.collect(queue)
        if batch is None:
            return
        cycles = model.cycles_for(len(batch))
        yield cycles
        done = engine.now
        batches.value += 1
        busy_cycles.value += cycles
        for request in batch:
            latency.record(done - request.arrival)
            completed.value += 1


def _validate_run(requests: Sequence[Request], model: ServiceModel,
                  cores: int) -> None:
    """Shared admission checks for the DES and bulk serving paths."""
    if cores < 1:
        raise ServeError(f"need at least one core, got {cores}")
    if not requests:
        raise ServeError("need at least one request")
    for request in requests:
        if request.keys != model.keys_per_request:
            raise ServeError(
                f"request {request.seq} carries {request.keys} keys but the "
                f"service model was calibrated for {model.keys_per_request}")


def simulate_service(requests: Sequence[Request], model: ServiceModel, *,
                     policy: SchedulingPolicy, cores: int,
                     offered: float = 0.0,
                     registry: Optional[StatsRegistry] = None,
                     bulk: bool = False) -> ServeResult:
    """Serve a fixed request stream on ``cores`` identical servers.

    ``requests`` must already be in global arrival order (see
    :func:`~repro.serve.arrivals.merge_requests`).  The run is fully
    deterministic: one engine, deterministic dispatch, no randomness
    outside the arrival times baked into ``requests``.

    ``bulk=True`` routes the run through the vectorized array replay
    (:mod:`repro.serve.bulk`), which produces bit-identical results and
    falls back to this discrete-event path whenever event ordering is
    ambiguous (see :class:`~repro.sim.bulk.BulkFallback`).
    """
    _validate_run(requests, model, cores)
    if bulk:
        from ..sim.bulk import BulkFallback
        from .bulk import simulate_service_bulk
        try:
            return simulate_service_bulk(requests, model, policy=policy,
                                         cores=cores, offered=offered,
                                         registry=registry)
        except BulkFallback:
            pass  # a contended/tied schedule: replay on the DES below

    if registry is None:
        registry = StatsRegistry()
    scope = registry.scope("serve")
    latency = scope.distribution("latency")
    completed = scope.counter("completed")
    batches = scope.counter("batches")
    busy_cycles = scope.register("busy_cycles", Counter(0.0))

    engine = Engine()
    # Queues sized to the whole stream keep the source open-loop: an
    # arrival is never back-pressured, overload turns into backlog.
    queues = [BoundedQueue(engine, max(1, len(requests)), name=f"core{i}.admit")
              for i in range(cores)]
    for i, queue in enumerate(queues):
        queue.register_into(registry, f"serve.core{i}.queue")
        engine.monitor_resource(queue.name, queue)
    engine.process(_source(engine, requests, queues), name="serve.source")
    for i, queue in enumerate(queues):
        engine.process(
            _server(engine, queue, policy, model, latency, completed,
                    batches, busy_cycles),
            name=f"serve.core{i}.server")
    makespan = engine.run()
    engine.register_into(registry, "serve.engine")

    return ServeResult(
        label=model.label, policy=policy.name, offered=offered, cores=cores,
        requests=len(requests), completed=int(completed.value),
        makespan=makespan, latency=latency,
        first_arrival=min(request.arrival for request in requests),
        stats=registry.to_dict())


def build_requests(rate: float, num_requests: int, keys_per_request: int, *,
                   clients: int = 1, seed: int = 0,
                   arrival: str = "poisson") -> List[Request]:
    """Build a merged open-loop request stream at total rate ``rate``.

    ``clients`` independent streams each emit at ``rate / clients``;
    Poisson streams get per-client seeds derived from ``seed``.  Because
    every stream scales by the same rate, the merged arrival *order* is
    rate-invariant — raising the offered load compresses the same
    pattern, which keeps per-request latency (and so every percentile)
    weakly non-decreasing in load for work-conserving policies.
    """
    if clients < 1:
        raise ServeError(f"need at least one client, got {clients}")
    if num_requests < clients:
        raise ServeError(
            f"need at least one request per client "
            f"({num_requests} requests, {clients} clients)")
    per_client = rate / clients
    base = num_requests // clients
    remainder = num_requests % clients
    streams = []
    for client in range(clients):
        count = base + (1 if client < remainder else 0)
        process: ArrivalProcess
        if arrival == "poisson":
            process = PoissonArrivals(per_client, seed=seed + client)
        elif arrival == "deterministic":
            process = DeterministicArrivals(per_client)
        else:
            raise ServeError(
                f"unknown arrival process {arrival!r}; "
                f"want 'poisson' or 'deterministic'")
        streams.append(process.requests(count, keys_per_request,
                                        client=client))
    return merge_requests(streams)


def run_open_loop(model: ServiceModel, *, rate: float, num_requests: int,
                  policy: SchedulingPolicy, cores: int,
                  clients: int = 1, seed: int = 0,
                  arrival: str = "poisson", bulk: bool = False) -> ServeResult:
    """Convenience: build the arrival stream and serve it."""
    requests = build_requests(rate, num_requests, model.keys_per_request,
                              clients=clients, seed=seed, arrival=arrival)
    return simulate_service(requests, model, policy=policy, cores=cores,
                            offered=rate, bulk=bulk)
