"""The open-loop serving simulation.

Composes the other serving pieces on the discrete-event engine: an
arrival source feeds per-core admission queues round-robin, one server
process per core collects batches through a scheduling policy and holds
the core busy for the calibrated service time, and every completed
request's end-to-end latency (queueing + batching + service) lands in a
:class:`~repro.obs.metrics.Distribution` for tail extraction.

Open loop means arrivals never throttle: the admission queues are sized
to hold the whole request stream, so offered load beyond saturation
builds backlog and latency instead of slowing the source — the regime
the throughput–latency figure exists to show.

**Resilience.**  The happy path above is byte-for-byte the PR 6 serving
simulation.  A run becomes *resilient* — a separate source/server pair
with admission control, per-request deadlines, walker faults, and an
optional degraded-mode controller — only when asked: a ``shed:`` /
``timeout:`` policy wrapper, an explicit ``queue_depth``, or a
:class:`ResilienceConfig` (SLO, fault model, controller).  Plain runs
never touch the resilient code, which is what keeps fig-serve's output
bit-identical to the pre-resilience tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ServeError
from ..obs import Counter, Distribution, StatsRegistry
from ..sim.engine import Engine
from ..sim.resources import BoundedQueue
from .arrivals import (ArrivalProcess, DeterministicArrivals, PoissonArrivals,
                       Request, merge_requests)
from .control import Controller, ControllerSpec
from .faults import CoreCapacity, WalkerFaultModel, build_capacities
from .policies import (BatchBySize, SchedulingPolicy, admission_depth,
                       request_timeout)
from .service import ServiceModel


@dataclass(frozen=True)
class ResilienceConfig:
    """Opt-in resilience settings for one serving run.

    ``slo`` is the end-to-end latency target in cycles (defines the
    goodput numerator, and the controller's setpoint).  ``faults`` is a
    seeded walker-death schedule; when it can fire, ``fallback`` must
    supply the host-core service model the core degrades to once all its
    walkers are dead.  ``controller`` closes the loop from windowed p99
    to the admission/batching knobs and requires an SLO.
    """

    slo: Optional[float] = None
    faults: Optional[WalkerFaultModel] = None
    controller: Optional[ControllerSpec] = None
    fallback: Optional[ServiceModel] = None

    def __post_init__(self) -> None:
        if self.slo is not None and not self.slo > 0:
            raise ServeError(f"SLO must be > 0 cycles, got {self.slo!r}")
        if self.faults is not None and self.faults.active \
                and self.fallback is None:
            raise ServeError(
                "an active walker-fault model needs a host fallback "
                "service model (cores must keep serving when all their "
                "walkers are dead)")
        if self.controller is not None and self.slo is None:
            raise ServeError(
                "a serve controller needs an SLO to regulate against "
                "(pass --serve-slo with --serve-controller)")

    @property
    def active(self) -> bool:
        """Whether any resilience feature is actually switched on."""
        return (self.slo is not None
                or (self.faults is not None and self.faults.active)
                or self.controller is not None)


@dataclass
class ServeResult:
    """Outcome of one open-loop serving run at one offered load."""

    label: str                  # backend label (from the service model)
    policy: str                 # scheduling policy name
    offered: float              # offered load, requests per kilocycle
    cores: int
    requests: int               # requests offered
    completed: int              # requests served (== requests when drained)
    makespan: float             # cycles until the last completion
    latency: Distribution       # end-to-end request latency, cycles
    first_arrival: float = 0.0  # when the first request arrived
    stats: Dict[str, Any] = field(default_factory=dict)
    shed: int = 0               # arrivals rejected at admission
    expired: int = 0            # requests dropped past their deadline
    faults: int = 0             # walker deaths that landed within the run
    slo: Optional[float] = None  # latency SLO in cycles (None = no SLO)
    in_slo: int = 0             # completions within the SLO

    @property
    def achieved(self) -> float:
        """Achieved throughput in requests per kilocycle (saturates at
        service capacity when the offered load exceeds it).

        Measured over the window the system actually had work: from the
        first arrival to the last completion.  Counting the idle lead-in
        before the first request (as an earlier version did) understated
        throughput at low offered loads and small request counts, where
        the lead-in is a visible fraction of the makespan.
        """
        span = self.makespan - self.first_arrival
        if span <= 0:
            return 0.0
        return self.completed * 1000.0 / span

    @property
    def goodput(self) -> float:
        """In-SLO completions per kilocycle (== achieved when no SLO).

        The resilience figure's headline metric: served work only counts
        when it lands inside the latency target, so shedding that keeps
        the remaining traffic in-SLO can *raise* goodput even as it
        lowers raw throughput.
        """
        if self.slo is None:
            return self.achieved
        span = self.makespan - self.first_arrival
        if span <= 0:
            return 0.0
        return self.in_slo * 1000.0 / span

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered requests rejected at admission."""
        return self.shed / self.requests if self.requests else 0.0

    @property
    def p50(self) -> float:
        return self.latency.p50

    @property
    def p95(self) -> float:
        return self.latency.p95

    @property
    def p99(self) -> float:
        return self.latency.p99


def _source(engine: Engine, requests: Sequence[Request],
            queues: List[BoundedQueue]):
    """Emit each request at its arrival time, round-robin across cores."""
    cores = len(queues)
    for request in requests:
        delay = request.arrival - engine.now
        if delay > 0:
            yield delay
        yield queues[request.seq % cores].put(request)
    for queue in queues:
        queue.close()


def _server(engine: Engine, queue: BoundedQueue, policy: SchedulingPolicy,
            model: ServiceModel, latency: Distribution, completed, batches,
            busy_cycles):
    """Collect batches through the policy and serve them to completion."""
    while True:
        batch = yield from policy.collect(queue)
        if batch is None:
            return
        cycles = model.cycles_for(len(batch))
        yield cycles
        done = engine.now
        batches.value += 1
        busy_cycles.value += cycles
        for request in batch:
            latency.record(done - request.arrival)
            completed.value += 1


class _ResilientState:
    """Mutable control state shared by one resilient run's processes.

    The source consults it for the admission bound, the servers for the
    active policy and deadline, and the controller process mutates it —
    all on one engine, so every read/write is deterministically ordered.
    """

    def __init__(self, policy: SchedulingPolicy, queue_depth: Optional[int],
                 config: Optional[ResilienceConfig], scope,
                 cores: int) -> None:
        self.base = policy
        self.active = policy
        self.timeout = request_timeout(policy)
        self.shed_declared = admission_depth(policy) is not None
        depths = [d for d in (queue_depth, admission_depth(policy))
                  if d is not None]
        self.static_depth = min(depths) if depths else None
        self.slo = config.slo if config is not None else None
        self.shed = scope.counter("shed")
        self.expired = scope.counter("expired")
        self.aborts = scope.counter("aborts")
        self.in_slo = (scope.counter("in_slo")
                       if self.slo is not None else None)
        self.servers_live = cores
        self.last_done = 0.0
        self.completions = 0
        self.controller: Optional[Controller] = None
        self.controller_depth: Optional[int] = None
        self.spares_used = 0
        self._window: Optional[Distribution] = None
        if config is not None and config.controller is not None:
            self.controller = Controller(config.controller, config.slo)
            self._window = Distribution()

    def bound(self) -> Optional[int]:
        """The admission depth currently in force (None = unbounded)."""
        depths = [d for d in (self.static_depth, self.controller_depth)
                  if d is not None]
        return min(depths) if depths else None

    def can_shed(self) -> bool:
        """Whether a full queue sheds (vs. raising): shedding must be
        *declared*, by a ``shed:`` wrapper or a controller degradation."""
        return self.shed_declared or self.controller_depth is not None

    def on_complete(self, latency_cycles: float, done: float) -> None:
        self.completions += 1
        self.last_done = done
        if self.in_slo is not None and latency_cycles <= self.slo:
            self.in_slo.value += 1
        if self._window is not None:
            self._window.record(latency_cycles)

    def server_done(self) -> None:
        self.servers_live -= 1

    def window_p99(self) -> Optional[float]:
        """This window's p99 (None when empty); resets the window."""
        window = self._window
        if window is None or window.count == 0:
            return None
        p99 = window.p99
        self._window = Distribution()
        return p99


def _resilient_source(engine: Engine, requests: Sequence[Request],
                      queues: List[BoundedQueue], state: _ResilientState):
    """The open-loop source with bounded admission.

    Identical yield pattern to :func:`_source` except that an arrival
    finding its core's queue at the admission bound is shed (when a shed
    depth is declared) or raises — the satellite contract that open-loop
    admission must never silently block.
    """
    cores = len(queues)
    for request in requests:
        delay = request.arrival - engine.now
        if delay > 0:
            yield delay
        queue = queues[request.seq % cores]
        bound = state.bound()
        if bound is not None and len(queue) >= bound:
            if state.can_shed():
                state.shed.value += 1
                continue
            raise ServeError(
                f"admission queue {queue.name!r} is full ({len(queue)} "
                f"queued, bound {bound}) and no shed depth is declared; "
                f"the open-loop source must never block — wrap the policy "
                f"in 'shed:N' or raise queue_depth")
        yield queue.put(request)
    for queue in queues:
        queue.close()


def _drop_doomed(batch: List[Request], now: float, timeout: Optional[float],
                 capacity: CoreCapacity, expired) -> List[Request]:
    """Drop requests that cannot finish by their deadline.

    Covers both queued expiry (deadline already past) and in-service
    expiry (deadline inside the batch's service window): serving a
    request that will miss its deadline anyway is wasted capacity, so
    the core drops it *before* committing — the all-or-nothing offload
    model.  Shrinking the batch can shorten the service time, so filter
    to a fixed point.
    """
    if timeout is None:
        return batch
    while batch:
        cycles = capacity.cycles_for(len(batch), now)
        alive = [r for r in batch if r.arrival + timeout >= now + cycles]
        if len(alive) == len(batch):
            break
        expired.value += len(batch) - len(alive)
        batch = alive
    return batch


def _resilient_server(engine: Engine, queue: BoundedQueue,
                      state: _ResilientState, capacity: CoreCapacity,
                      latency: Distribution, completed, batches, busy_cycles):
    """The per-core server under deadlines, faults, and policy swaps.

    Matches :func:`_server` yield-for-yield when no deadline filters and
    no death interrupts a batch — the clean-path bit-parity the bulk
    replay and the fault-rate-zero acceptance check rely on.
    """
    while True:
        batch = yield from state.active.collect(queue)
        if batch is None:
            state.server_done()
            return
        while batch:
            start = engine.now
            batch = _drop_doomed(batch, start, state.timeout, capacity,
                                 state.expired)
            if not batch:
                break
            cycles = capacity.cycles_for(len(batch), start)
            death = capacity.next_death_after(start)
            if death is not None and death < start + cycles:
                # A walker dies mid-batch: the offload aborts at the
                # death instant and the whole batch re-serves under the
                # degraded capacity (traversals are all-or-nothing).
                yield death - start
                busy_cycles.value += death - start
                state.aborts.value += 1
                continue
            yield cycles
            done = engine.now
            batches.value += 1
            busy_cycles.value += cycles
            for request in batch:
                request_latency = done - request.arrival
                latency.record(request_latency)
                completed.value += 1
                state.on_complete(request_latency, done)
            break


def _controller_proc(engine: Engine, state: _ResilientState,
                     capacities: List[CoreCapacity]):
    """Window tick: read the windowed p99, move the degradation level.

    Runs until every server has drained, so the controller never
    outlives the work by more than one window.
    """
    controller = state.controller
    spec = controller.spec
    while state.servers_live > 0:
        yield spec.window
        delta = controller.observe(state.window_p99())
        if delta == 0:
            continue
        now = engine.now
        if spec.action in ("shed", "all"):
            state.controller_depth = spec.shed_depth_at(controller.level)
        if spec.action in ("batch", "all"):
            state.active = (BatchBySize(spec.batch) if controller.level > 0
                            else state.base)
        if (delta > 0 and spec.action in ("walkers", "all")
                and state.spares_used < spec.spares):
            # Repair the most-degraded core with one spare walker.
            worst = max(capacities, key=lambda cap: cap.dead(now))
            if worst.repair(now):
                state.spares_used += 1


def _validate_run(requests: Sequence[Request], model: ServiceModel,
                  cores: int) -> None:
    """Shared admission checks for the DES and bulk serving paths."""
    if cores < 1:
        raise ServeError(f"need at least one core, got {cores}")
    if not requests:
        raise ServeError("need at least one request")
    for request in requests:
        if request.keys != model.keys_per_request:
            raise ServeError(
                f"request {request.seq} carries {request.keys} keys but the "
                f"service model was calibrated for {model.keys_per_request}")


def simulate_service(requests: Sequence[Request], model: ServiceModel, *,
                     policy: SchedulingPolicy, cores: int,
                     offered: float = 0.0,
                     registry: Optional[StatsRegistry] = None,
                     bulk: bool = False,
                     resilience: Optional[ResilienceConfig] = None,
                     queue_depth: Optional[int] = None) -> ServeResult:
    """Serve a fixed request stream on ``cores`` identical servers.

    ``requests`` must already be in global arrival order (see
    :func:`~repro.serve.arrivals.merge_requests`).  The run is fully
    deterministic: one engine, deterministic dispatch, no randomness
    outside the arrival times baked into ``requests``.

    ``bulk=True`` routes the run through the vectorized array replay
    (:mod:`repro.serve.bulk`), which produces bit-identical results and
    falls back to this discrete-event path whenever event ordering is
    ambiguous (see :class:`~repro.sim.bulk.BulkFallback`).

    ``resilience`` and ``queue_depth`` (and ``shed:``/``timeout:``
    policy wrappers) switch the run onto the resilient source/server
    pair; without them the original plain path runs, untouched.
    """
    _validate_run(requests, model, cores)
    if queue_depth is not None and queue_depth < 1:
        raise ServeError(f"queue_depth must be >= 1, got {queue_depth}")
    resilient = (queue_depth is not None
                 or admission_depth(policy) is not None
                 or request_timeout(policy) is not None
                 or (resilience is not None and resilience.active))
    if bulk:
        from ..sim.bulk import BulkFallback
        from .bulk import simulate_service_bulk
        try:
            return simulate_service_bulk(requests, model, policy=policy,
                                         cores=cores, offered=offered,
                                         registry=registry,
                                         resilience=resilience,
                                         queue_depth=queue_depth)
        except BulkFallback:
            pass  # a contended/tied schedule: replay on the DES below
    if resilient:
        return _simulate_resilient(requests, model, policy=policy,
                                   cores=cores, offered=offered,
                                   registry=registry, resilience=resilience,
                                   queue_depth=queue_depth)

    if registry is None:
        registry = StatsRegistry()
    scope = registry.scope("serve")
    latency = scope.distribution("latency")
    completed = scope.counter("completed")
    batches = scope.counter("batches")
    busy_cycles = scope.register("busy_cycles", Counter(0.0))

    engine = Engine()
    # Queues sized to the whole stream keep the source open-loop: an
    # arrival is never back-pressured, overload turns into backlog.
    queues = [BoundedQueue(engine, max(1, len(requests)), name=f"core{i}.admit")
              for i in range(cores)]
    for i, queue in enumerate(queues):
        queue.register_into(registry, f"serve.core{i}.queue")
        engine.monitor_resource(queue.name, queue)
    engine.process(_source(engine, requests, queues), name="serve.source")
    for i, queue in enumerate(queues):
        engine.process(
            _server(engine, queue, policy, model, latency, completed,
                    batches, busy_cycles),
            name=f"serve.core{i}.server")
    makespan = engine.run()
    engine.register_into(registry, "serve.engine")

    return ServeResult(
        label=model.label, policy=policy.name, offered=offered, cores=cores,
        requests=len(requests), completed=int(completed.value),
        makespan=makespan, latency=latency,
        first_arrival=min(request.arrival for request in requests),
        stats=registry.to_dict())


def _simulate_resilient(requests: Sequence[Request], model: ServiceModel, *,
                        policy: SchedulingPolicy, cores: int, offered: float,
                        registry: Optional[StatsRegistry],
                        resilience: Optional[ResilienceConfig],
                        queue_depth: Optional[int]) -> ServeResult:
    """The resilient twin of the plain serving run.

    Same engine, same queue sizing, same per-core layout; adds bounded
    admission, per-request deadlines, the walker-fault capacity model,
    and (optionally) the degraded-mode controller.  With everything
    disabled but an SLO, the event schedule is identical to the plain
    path — only the in-SLO accounting differs.
    """
    if registry is None:
        registry = StatsRegistry()
    scope = registry.scope("serve")
    latency = scope.distribution("latency")
    completed = scope.counter("completed")
    batches = scope.counter("batches")
    busy_cycles = scope.register("busy_cycles", Counter(0.0))
    state = _ResilientState(policy, queue_depth, resilience, scope, cores)
    faults_model = resilience.faults if resilience is not None else None
    fallback = resilience.fallback if resilience is not None else None
    capacities = build_capacities(faults_model, cores, model, fallback)

    engine = Engine()
    # Queue capacity stays open-loop-sized; the admission *bound* is
    # enforced by the resilient source (it can tighten mid-run under a
    # controller, which a fixed queue capacity could not express).
    queues = [BoundedQueue(engine, max(1, len(requests)), name=f"core{i}.admit")
              for i in range(cores)]
    for i, queue in enumerate(queues):
        queue.register_into(registry, f"serve.core{i}.queue")
        engine.monitor_resource(queue.name, queue)
    engine.process(_resilient_source(engine, requests, queues, state),
                   name="serve.source")
    for i, queue in enumerate(queues):
        engine.process(
            _resilient_server(engine, queue, state, capacities[i], latency,
                              completed, batches, busy_cycles),
            name=f"serve.core{i}.server")
    if state.controller is not None:
        engine.process(_controller_proc(engine, state, capacities),
                       name="serve.controller")
    end = engine.run()
    engine.register_into(registry, "serve.engine")

    # With a controller the engine runs up to one idle window past the
    # last completion; the makespan is still the last completion.
    makespan = (state.last_done
                if state.controller is not None and state.completions
                else end)
    fault_total = 0
    if faults_model is not None and faults_model.active:
        fault_total = sum(cap.faults_by(makespan) for cap in capacities)
        scope.counter("faults").value = fault_total
    if state.controller is not None:
        controller_scope = registry.scope("serve.controller")
        controller_scope.counter("windows").value = state.controller.windows
        controller_scope.counter("breaches").value = state.controller.breaches
        controller_scope.counter("degradations").value = \
            state.controller.degradations
        controller_scope.counter("recoveries").value = \
            state.controller.recoveries
        controller_scope.counter("peak_level").value = \
            state.controller.peak_level

    served = int(completed.value)
    shed = int(state.shed.value)
    expired = int(state.expired.value)
    if served + shed + expired != len(requests):
        raise ServeError(
            f"request conservation violated: {len(requests)} arrived but "
            f"{served} served + {shed} shed + {expired} expired")
    return ServeResult(
        label=model.label, policy=policy.name, offered=offered, cores=cores,
        requests=len(requests), completed=served,
        makespan=makespan, latency=latency,
        first_arrival=min(request.arrival for request in requests),
        stats=registry.to_dict(),
        shed=shed, expired=expired, faults=fault_total,
        slo=state.slo,
        in_slo=int(state.in_slo.value) if state.in_slo is not None else 0)


def build_requests(rate: float, num_requests: int, keys_per_request: int, *,
                   clients: int = 1, seed: int = 0,
                   arrival: str = "poisson") -> List[Request]:
    """Build a merged open-loop request stream at total rate ``rate``.

    ``clients`` independent streams each emit at ``rate / clients``;
    Poisson streams get per-client seeds derived from ``seed``.  Because
    every stream scales by the same rate, the merged arrival *order* is
    rate-invariant — raising the offered load compresses the same
    pattern, which keeps per-request latency (and so every percentile)
    weakly non-decreasing in load for work-conserving policies.
    """
    if clients < 1:
        raise ServeError(f"need at least one client, got {clients}")
    if num_requests < clients:
        raise ServeError(
            f"need at least one request per client "
            f"({num_requests} requests, {clients} clients)")
    per_client = rate / clients
    base = num_requests // clients
    remainder = num_requests % clients
    streams = []
    for client in range(clients):
        count = base + (1 if client < remainder else 0)
        process: ArrivalProcess
        if arrival == "poisson":
            process = PoissonArrivals(per_client, seed=seed + client)
        elif arrival == "deterministic":
            process = DeterministicArrivals(per_client)
        else:
            raise ServeError(
                f"unknown arrival process {arrival!r}; "
                f"want 'poisson' or 'deterministic'")
        streams.append(process.requests(count, keys_per_request,
                                        client=client))
    return merge_requests(streams)


def run_open_loop(model: ServiceModel, *, rate: float, num_requests: int,
                  policy: SchedulingPolicy, cores: int,
                  clients: int = 1, seed: int = 0,
                  arrival: str = "poisson", bulk: bool = False,
                  resilience: Optional[ResilienceConfig] = None,
                  queue_depth: Optional[int] = None) -> ServeResult:
    """Convenience: build the arrival stream and serve it."""
    requests = build_requests(rate, num_requests, model.keys_per_request,
                              clients=clients, seed=seed, arrival=arrival)
    return simulate_service(requests, model, policy=policy, cores=cores,
                            offered=rate, bulk=bulk, resilience=resilience,
                            queue_depth=queue_depth)
