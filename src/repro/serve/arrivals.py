"""Seeded open-loop arrival processes.

The serving layer models *arriving* work: clients emit probe-batch
requests at times the backend cannot influence (open-loop, unlike the
paper's closed one-shot runs — see EXPERIMENTS.md).  Two processes:

* :class:`DeterministicArrivals` — evenly spaced requests, the fluid
  limit.  Useful for calibration and for tests that need exact algebra.
* :class:`PoissonArrivals` — exponential inter-arrival gaps, the
  standard open-loop model for independent clients.

Both are **seed-deterministic** and **rate-scalable**: a Poisson process
draws one unit-rate exponential gap sequence from its seed and divides
by the rate, so two processes with the same seed and different rates
produce *the same arrival pattern on different time scales*.  That is
what makes per-request latency — and therefore every latency percentile
— weakly non-decreasing in offered load for a work-conserving server:
compressing the gaps of a fixed pattern can only grow each request's
queueing delay.  The fig-serve sweep's "p99 non-decreasing in offered
load" acceptance property rests on this.

Rates are expressed in **requests per kilocycle** (the natural unit for
cycle-denominated service times).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..errors import ServeError


@dataclass(frozen=True)
class Request:
    """One client request: a probe batch arriving at a point in time."""

    seq: int          # position in the (merged) arrival order
    client: int       # emitting client stream
    arrival: float    # absolute arrival time, cycles
    keys: int         # probe keys carried by the request


class ArrivalProcess:
    """Interface: a seeded generator of absolute arrival times."""

    #: Requests per kilocycle; set by subclasses.
    rate: float

    def times(self, count: int) -> List[float]:
        """The first ``count`` absolute arrival times, strictly sorted."""
        raise NotImplementedError

    def mean_gap(self) -> float:
        """The process's mean inter-arrival gap in cycles."""
        return 1000.0 / self.rate

    def requests(self, count: int, keys_per_request: int,
                 client: int = 0) -> List[Request]:
        """The first ``count`` requests of one client stream."""
        if keys_per_request < 1:
            raise ServeError(
                f"keys_per_request must be >= 1, got {keys_per_request}")
        return [Request(seq=seq, client=client, arrival=arrival,
                        keys=keys_per_request)
                for seq, arrival in enumerate(self.times(count))]


def _check_rate(rate: float) -> float:
    # NaN compares false against 0; inf would mean zero-gap arrivals (the
    # whole stream landing at one instant), so both are rejected.
    if not (rate > 0 and math.isfinite(rate)):
        raise ServeError(
            f"arrival rate must be finite and positive, got {rate!r}")
    return float(rate)


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals: request ``i`` arrives at ``(i+1) * gap``."""

    def __init__(self, rate: float) -> None:
        self.rate = _check_rate(rate)

    def times(self, count: int) -> List[float]:
        """Arrival ``i`` at exactly ``(i + 1) * mean_gap()``."""
        gap = self.mean_gap()
        return [(i + 1) * gap for i in range(count)]


class PoissonArrivals(ArrivalProcess):
    """Seeded Poisson arrivals (exponential inter-arrival gaps).

    The unit-rate gap sequence depends only on ``seed``; the rate only
    scales it (see the module docstring for why that matters).
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        self.rate = _check_rate(rate)
        self.seed = seed

    def times(self, count: int) -> List[float]:
        """Cumulative sums of seeded unit-exponential gaps, rate-scaled."""
        rng = random.Random(self.seed)
        scale = self.mean_gap()
        times: List[float] = []
        now = 0.0
        for _ in range(count):
            now += rng.expovariate(1.0) * scale
            times.append(now)
        return times


def merge_requests(streams: Iterable[Sequence[Request]]) -> List[Request]:
    """Merge per-client request streams into one global arrival order.

    The merge sorts by ``(arrival, client, seq)`` — client id breaks
    simultaneous-arrival ties, so the order is total and deterministic —
    and renumbers ``seq`` globally.  Each client's requests keep their
    relative order (their per-client ``seq`` values were already sorted
    by arrival time within the stream).
    """
    merged = sorted((request for stream in streams for request in stream),
                    key=lambda r: (r.arrival, r.client, r.seq))
    return [Request(seq=seq, client=request.client, arrival=request.arrival,
                    keys=request.keys)
            for seq, request in enumerate(merged)]
