"""The serving layer: open-loop traffic against the indexing backends.

The paper measures one-shot bulk probes; this package asks the follow-on
question a database serving layer cares about: what throughput–latency
curve does each backend trace when requests *arrive* instead of being
handed over in bulk?  Four pieces:

* :mod:`~repro.serve.arrivals` — seeded open-loop arrival processes
  (deterministic and Poisson) emitting probe-batch requests.
* :mod:`~repro.serve.service` — calibrated service-time models measured
  on the detailed core/Widx simulators, cached through the campaign.
* :mod:`~repro.serve.policies` — pluggable batch schedulers (FIFO,
  batch-by-size, batch-by-deadline) over per-core admission queues.
* :mod:`~repro.serve.simulate` — the discrete-event composition, with
  end-to-end latency recorded into an observability
  :class:`~repro.obs.metrics.Distribution` for p50/p95/p99 extraction.

The ``fig-serve`` CLI verb (:mod:`repro.harness.figserve`) sweeps
offered load over these pieces to produce the throughput–latency figure.
"""

from .arrivals import (ArrivalProcess, DeterministicArrivals, PoissonArrivals,
                       Request, merge_requests)
from .policies import (BatchByDeadline, BatchBySize, FifoPolicy,
                       SchedulingPolicy, parse_policy)
from .service import (SERVICE_BACKENDS, ServiceMeasurement, ServiceModel,
                      measure_service)
from .simulate import (ServeResult, build_requests, run_open_loop,
                       simulate_service)

__all__ = [
    "ArrivalProcess",
    "BatchByDeadline",
    "BatchBySize",
    "DeterministicArrivals",
    "FifoPolicy",
    "PoissonArrivals",
    "Request",
    "SERVICE_BACKENDS",
    "SchedulingPolicy",
    "ServeResult",
    "ServiceMeasurement",
    "ServiceModel",
    "build_requests",
    "measure_service",
    "merge_requests",
    "parse_policy",
    "run_open_loop",
    "simulate_service",
]
