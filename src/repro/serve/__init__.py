"""The serving layer: open-loop traffic against the indexing backends.

The paper measures one-shot bulk probes; this package asks the follow-on
question a database serving layer cares about: what throughput–latency
curve does each backend trace when requests *arrive* instead of being
handed over in bulk?  Six pieces:

* :mod:`~repro.serve.arrivals` — seeded open-loop arrival processes
  (deterministic and Poisson) emitting probe-batch requests.
* :mod:`~repro.serve.service` — calibrated service-time models measured
  on the detailed core/Widx simulators, cached through the campaign.
* :mod:`~repro.serve.policies` — pluggable batch schedulers (FIFO,
  batch-by-size, batch-by-deadline) over per-core admission queues, plus
  composable admission wrappers (``shed:``, ``timeout:``).
* :mod:`~repro.serve.faults` — the seeded walker-fault model: per-core
  death schedules and the time-varying capacity they induce.
* :mod:`~repro.serve.control` — the deterministic degraded-mode
  controller regulating windowed p99 against an SLO.
* :mod:`~repro.serve.core` — the transport-agnostic serving core: one
  clock-free state machine (:class:`~repro.serve.core.ServingCore`)
  holding every admission/shedding/deadline/SLO/controller decision,
  driven by explicit timestamps.
* :mod:`~repro.serve.simulate` — the discrete-event *driver* over the
  core, with end-to-end latency recorded into an observability
  :class:`~repro.obs.metrics.Distribution` for p50/p95/p99 extraction,
  and the opt-in resilient path tying the above together.  The
  wall-clock driver is :mod:`repro.live`; the vectorized one is
  :mod:`repro.serve.bulk`.

The ``fig-serve`` and ``fig-resilience`` CLI verbs
(:mod:`repro.harness.figserve`, :mod:`repro.harness.figresilience`)
sweep offered load — and fault rate — over these pieces.
"""

from .arrivals import (ArrivalProcess, DeterministicArrivals, PoissonArrivals,
                       Request, merge_requests)
from .control import (CONTROLLER_ACTIONS, Controller, ControllerSpec,
                      parse_controller)
from .core import ServingCore, validate_run
from .faults import CoreCapacity, WalkerFaultModel, fault_draw
from .policies import (AdmissionWrapper, BatchByDeadline, BatchBySize,
                       FifoPolicy, SchedulingPolicy, ShedPolicy,
                       TimeoutPolicy, admission_depth, base_policy,
                       parse_policy, request_timeout)
from .service import (SERVICE_BACKENDS, ServiceMeasurement, ServiceModel,
                      measure_service)
from .simulate import (ResilienceConfig, ServeResult, build_requests,
                       run_open_loop, simulate_service)

__all__ = [
    "AdmissionWrapper",
    "ArrivalProcess",
    "BatchByDeadline",
    "BatchBySize",
    "CONTROLLER_ACTIONS",
    "Controller",
    "ControllerSpec",
    "CoreCapacity",
    "DeterministicArrivals",
    "FifoPolicy",
    "PoissonArrivals",
    "Request",
    "ResilienceConfig",
    "SERVICE_BACKENDS",
    "SchedulingPolicy",
    "ServeResult",
    "ServiceMeasurement",
    "ServiceModel",
    "ServingCore",
    "ShedPolicy",
    "TimeoutPolicy",
    "WalkerFaultModel",
    "admission_depth",
    "base_policy",
    "build_requests",
    "fault_draw",
    "measure_service",
    "merge_requests",
    "parse_controller",
    "parse_policy",
    "request_timeout",
    "run_open_loop",
    "simulate_service",
    "validate_run",
]
