"""Pluggable batch-scheduling policies for the per-core admission queues.

A policy's :meth:`~SchedulingPolicy.collect` is a *simulation generator*:
the per-core server process runs it via ``yield from`` against its
:class:`~repro.sim.resources.BoundedQueue`, and the return value is the
batch of requests to serve next (or ``None`` once the queue is closed
and drained).  Policies are stateless between collections, so one
instance can serve every core.

Three policies, in increasing willingness to trade latency for batching:

* :class:`FifoPolicy` — serve each request alone, immediately.
* :class:`BatchBySize` — greedily absorb already-queued requests up to a
  cap; never waits for future arrivals.
* :class:`BatchByDeadline` — after the first request arrives, hold the
  batch open a fixed number of cycles, then serve everything queued
  (optionally capped).

On top of those, two composable *admission wrappers* (the resilience
layer; see :mod:`repro.serve.simulate`):

* :class:`ShedPolicy` (``shed:QDEPTH:<inner>``) — bounded admission: an
  arrival that finds ``QDEPTH`` requests already queued on its core is
  rejected (shed) instead of parked, so overload turns into explicit
  drops rather than unbounded backlog.
* :class:`TimeoutPolicy` (``timeout:CYCLES:<inner>``) — a per-request
  deadline of ``CYCLES`` after arrival; requests past it are dropped
  (expired) whether they are still queued or would expire mid-service.

Wrappers only *declare* the admission semantics — the resilient serving
path in :func:`~repro.serve.simulate.simulate_service` enforces them at
the source and server; a wrapper's ``collect`` simply delegates to its
inner policy, so wrapped policies stay usable anywhere a policy is.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..errors import ServeError
from ..sim.resources import BoundedQueue, QUEUE_CLOSED
from .arrivals import Request


class SchedulingPolicy:
    """Interface: decide which queued requests form the next batch."""

    name: str = "policy"

    def collect(self, queue: BoundedQueue):
        """Simulation generator returning the next batch (``None`` = the
        queue is closed and fully drained)."""
        raise NotImplementedError
        yield  # pragma: no cover - marks this as a generator signature

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class FifoPolicy(SchedulingPolicy):
    """One request per batch, served in arrival order."""

    name = "fifo"

    def collect(self, queue: BoundedQueue):
        """Block for one request; that request is the whole batch."""
        item = yield queue.get()
        if item is QUEUE_CLOSED:
            return None
        return [item]


class BatchBySize(SchedulingPolicy):
    """Serve up to ``max_batch`` requests, but only ones already queued.

    Work-conserving: the server never idles waiting for a fuller batch,
    it just sweeps whatever backlog exists when it becomes free.
    """

    def __init__(self, max_batch: int) -> None:
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch
        self.name = f"size:{max_batch}"

    def collect(self, queue: BoundedQueue):
        """Block for one request, then greedily drain the backlog."""
        first = yield queue.get()
        if first is QUEUE_CLOSED:
            return None
        batch: List[Request] = [first]
        while len(batch) < self.max_batch and len(queue) > 0:
            item = yield queue.get()
            if item is QUEUE_CLOSED:
                break
            batch.append(item)
        return batch


class BatchByDeadline(SchedulingPolicy):
    """Hold the batch open ``wait`` cycles after its first request, then
    serve everything queued (up to ``max_batch`` if given).

    The deadline bounds the batching delay any request can be charged:
    a request waits at most ``wait`` cycles for co-batched company, on
    top of ordinary queueing behind earlier batches.
    """

    def __init__(self, wait: float, max_batch: Optional[int] = None) -> None:
        # Reject NaN (compares false) and inf (a server that yields an
        # infinite hold-open delay never wakes, wedging the engine).
        if not (wait >= 0 and math.isfinite(wait)):
            raise ServeError(f"wait must be finite and >= 0, got {wait!r}")
        if max_batch is not None and max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        self.wait = float(wait)
        self.max_batch = max_batch
        self.name = (f"deadline:{wait:g}" if max_batch is None
                     else f"deadline:{wait:g}:{max_batch}")

    def collect(self, queue: BoundedQueue):
        """Block for one request, hold ``wait`` cycles, then drain."""
        first = yield queue.get()
        if first is QUEUE_CLOSED:
            return None
        batch: List[Request] = [first]
        if self.wait > 0:
            yield self.wait
        while ((self.max_batch is None or len(batch) < self.max_batch)
               and len(queue) > 0):
            item = yield queue.get()
            if item is QUEUE_CLOSED:
                break
            batch.append(item)
        return batch


class AdmissionWrapper(SchedulingPolicy):
    """Base for policies that wrap another policy with admission semantics.

    ``collect`` delegates to the wrapped policy — the shed/timeout
    behavior itself is enforced by the resilient serving path, which
    reads the wrapper's declaration via :func:`admission_depth` /
    :func:`request_timeout`.
    """

    def __init__(self, inner: SchedulingPolicy) -> None:
        if not isinstance(inner, SchedulingPolicy):
            raise ServeError(
                f"admission wrapper needs a policy to wrap, got {inner!r}")
        self.inner = inner

    def collect(self, queue: BoundedQueue):
        """Delegate batch formation to the wrapped policy."""
        batch = yield from self.inner.collect(queue)
        return batch


class ShedPolicy(AdmissionWrapper):
    """Bounded admission: shed arrivals that find ``depth`` queued."""

    def __init__(self, depth: int, inner: Optional[SchedulingPolicy] = None,
                 ) -> None:
        super().__init__(inner if inner is not None else FifoPolicy())
        if depth < 1:
            raise ServeError(f"shed depth must be >= 1, got {depth}")
        self.depth = depth
        self.name = f"shed:{depth}:{self.inner.name}"


class TimeoutPolicy(AdmissionWrapper):
    """Per-request deadline: drop requests ``cycles`` after arrival.

    The deadline aborts queued *and* in-service work: a request still
    queued at its deadline expires when the server next collects, and a
    request that would cross its deadline mid-service is dropped from
    the batch before the core commits to serving it (the all-or-nothing
    offload model — a traversal either completes in time or is never
    charged to the walkers).
    """

    def __init__(self, cycles: float,
                 inner: Optional[SchedulingPolicy] = None) -> None:
        super().__init__(inner if inner is not None else FifoPolicy())
        if not (cycles > 0 and math.isfinite(cycles)):
            raise ServeError(
                f"timeout must be finite and > 0, got {cycles!r}")
        self.cycles = float(cycles)
        self.name = f"timeout:{cycles:g}:{self.inner.name}"


def admission_depth(policy: SchedulingPolicy) -> Optional[int]:
    """The tightest shed depth declared by ``policy``'s wrappers (or None)."""
    depth: Optional[int] = None
    while isinstance(policy, AdmissionWrapper):
        if isinstance(policy, ShedPolicy):
            depth = policy.depth if depth is None else min(depth, policy.depth)
        policy = policy.inner
    return depth


def request_timeout(policy: SchedulingPolicy) -> Optional[float]:
    """The tightest per-request deadline declared by ``policy`` (or None)."""
    timeout: Optional[float] = None
    while isinstance(policy, AdmissionWrapper):
        if isinstance(policy, TimeoutPolicy):
            timeout = (policy.cycles if timeout is None
                       else min(timeout, policy.cycles))
        policy = policy.inner
    return timeout


def base_policy(policy: SchedulingPolicy) -> SchedulingPolicy:
    """The innermost (batch-forming) policy under any admission wrappers."""
    while isinstance(policy, AdmissionWrapper):
        policy = policy.inner
    return policy


#: Every spec the parser accepts, for error messages.
_VALID_FORMS = ("'fifo', 'size:N', 'deadline:CYCLES[:N]', "
                "'shed:QDEPTH[:SPEC]' and 'timeout:CYCLES[:SPEC]'")


def _policy_error(spec: str, detail: str) -> ServeError:
    return ServeError(
        f"bad scheduling policy spec {spec!r}: {detail}; "
        f"valid policies are {_VALID_FORMS}")


def parse_policy(spec: str) -> SchedulingPolicy:
    """Parse a policy spec string.

    Base specs: ``fifo``, ``size:N`` or ``deadline:CYCLES[:N]``.
    Admission wrappers compose recursively around any base spec:
    ``shed:QDEPTH[:<spec>]`` and ``timeout:CYCLES[:<spec>]`` (the inner
    spec defaults to ``fifo``), e.g. ``shed:64:timeout:5000:size:4``.

    Malformed specs raise :class:`~repro.errors.ServeError` naming the
    offending token and listing the valid policies.  A wrapper kind may
    appear at most once per chain (``shed:4:shed:8`` is rejected — the
    enforcement rule is "the tightest bound wins", so a doubled wrapper
    is at best redundant and at worst a silently ignored number); empty
    tokens from a trailing or doubled ``:`` are rejected rather than
    swallowed.
    """
    return _parse_parts(spec.strip().split(":"), spec, frozenset())


def _parse_parts(parts: List[str], spec: str,
                 seen: frozenset) -> SchedulingPolicy:
    token = ":".join(parts)
    kind = parts[0].lower()
    if not kind:
        raise _policy_error(
            spec, "empty policy token (a doubled or trailing ':'?)")
    try:
        if kind == "fifo":
            if len(parts) != 1:
                raise _policy_error(
                    spec, f"'fifo' takes no arguments (token {token!r})")
            return FifoPolicy()
        if kind == "size":
            if len(parts) != 2 or not parts[1]:
                raise _policy_error(
                    spec, f"'size' takes exactly one argument, 'size:N' "
                          f"(token {token!r})")
            return BatchBySize(int(parts[1]))
        if kind == "deadline":
            if len(parts) not in (2, 3) or not all(parts[1:]):
                raise _policy_error(
                    spec, f"'deadline' takes one or two arguments, "
                          f"'deadline:CYCLES[:N]' (token {token!r})")
            wait = float(parts[1])
            cap = int(parts[2]) if len(parts) == 3 else None
            return BatchByDeadline(wait, cap)
        if kind in ("shed", "timeout"):
            if len(parts) < 2 or not parts[1]:
                argument = "QDEPTH" if kind == "shed" else "CYCLES"
                raise _policy_error(
                    spec, f"'{kind}' needs an argument, "
                          f"'{kind}:{argument}[:SPEC]' (token {token!r})")
            if kind in seen:
                raise _policy_error(
                    spec, f"duplicate '{kind}' wrapper (token {token!r} "
                          f"repeats a '{kind}' further out; each admission "
                          f"wrapper may appear once per chain)")
            inner = (_parse_parts(parts[2:], spec, seen | {kind})
                     if len(parts) > 2 else None)
            if kind == "shed":
                return ShedPolicy(int(parts[1]), inner)
            return TimeoutPolicy(float(parts[1]), inner)
    except ValueError as exc:
        raise _policy_error(spec, f"{exc} (token {token!r})") from exc
    raise _policy_error(spec, f"unknown policy {parts[0]!r} (token {token!r})")
