"""Bulk-mode serving: array-level replay of the open-loop simulation.

:func:`simulate_service_bulk` reproduces
:func:`repro.serve.simulate.simulate_service` — bit for bit, including
the stats registry — without running the discrete-event engine.  The DES
run decomposes exactly:

* the source's emission times follow a one-pass recurrence over the
  arrival stream (``yield delay`` only when the gap is positive);
* each per-core server alternates between *blocked* (a waiting getter:
  the next put hands off directly, sampling queue depth 0) and *busy
  until its batch completes* (puts append to backlog, sampling the live
  queue depth);
* batch composition per policy is deterministic given those two states:
  a blocked server always starts a batch with just the handed-off
  request; a freed server pops the backlog head and greedily drains up
  to its cap; a deadline policy holds the batch open ``wait`` cycles and
  absorbs every strictly-earlier emission first;
* the global counters (latency distribution, busy cycles) accumulate in
  batch-completion order, so replaying batches sorted by completion time
  reproduces the exact float-add order.

Two replay engines share that decomposition.  Serial policies (fifo, or
a size cap of one — every batch is a single request, so per-core service
order equals emission order) run a tight Lindley-recurrence loop per
core and vectorize the latency math with numpy.  Batching policies run
the explicit backlog replay.  Both accumulate the registry in bulk:
order-free integers (batch/completion counts, queue-depth samples) land
as single adds, the order-sensitive float sums (busy cycles, the latency
distribution's total) as sequential left-folds in exact DES order via
:meth:`~repro.obs.metrics.Distribution.record_many`.

Whenever the event schedule is *tied* — an emission landing exactly on a
batch completion or deadline, two batches completing at the same instant
on different cores, a non-positive service time, or an unrecognized
policy type — the replay's event order would be ambiguous, and
:class:`~repro.sim.bulk.BulkFallback` sends the caller to the unchanged
DES path.  All fallback checks run before any registry mutation, so a
fallback never leaves partial state behind.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs import Counter, Occupancy, StatsRegistry
from ..sim.bulk import BulkFallback
from .arrivals import Request
from .policies import (BatchByDeadline, BatchBySize, FifoPolicy,
                       SchedulingPolicy, admission_depth, request_timeout)
from .service import ServiceModel
from .core import ResilienceConfig, ServeResult, validate_run

#: Per-core replay state: (samples, total, peak) of the admission queue.
DepthStats = Tuple[int, int, int]


def simulate_service_bulk(requests: Sequence[Request], model: ServiceModel, *,
                          policy: SchedulingPolicy, cores: int,
                          offered: float = 0.0,
                          registry: Optional[StatsRegistry] = None,
                          resilience: Optional[ResilienceConfig] = None,
                          queue_depth: Optional[int] = None) -> ServeResult:
    """Array replay of :func:`~repro.serve.simulate.simulate_service`.

    Raises :class:`~repro.sim.bulk.BulkFallback` when the run cannot be
    replayed unambiguously; callers catch it and use the DES.  Shedding,
    deadlines, walker faults, and the degraded-mode controller all make
    the schedule contended (which requests are dropped or re-served
    depends on event interleaving), so any of them is an immediate
    fallback; an SLO alone only adds accounting on top of the unchanged
    clean schedule, and stays on the bulk path.
    """
    validate_run(requests, model, cores)
    if (queue_depth is not None
            or admission_depth(policy) is not None
            or request_timeout(policy) is not None
            or (resilience is not None
                and (resilience.controller is not None
                     or (resilience.faults is not None
                         and resilience.faults.active)))):
        raise BulkFallback(
            "shedding, deadlines, walker faults, or a controller make "
            "the serve schedule contended")
    slo = resilience.slo if resilience is not None else None

    # -- policy dispatch.  A fifo server is exactly a size-1 batcher:
    # both take one request when blocked and pop one backlog head when
    # freed, with the same number of queue gets.  Only the concrete
    # policy classes are replayable — a subclass may override collect().
    ptype = type(policy)
    wait = 0.0
    if ptype is FifoPolicy:
        cap = 1
    elif ptype is BatchBySize:
        cap = policy.max_batch
    elif ptype is BatchByDeadline:
        cap = policy.max_batch
        wait = policy.wait
    else:
        raise BulkFallback(f"policy {policy!r} has no bulk replay")

    # -- source replay: emission times and sleep count ----------------
    # The DES source sleeps only for positive gaps (d = arrival - now),
    # accumulating e += d; late arrivals emit at the current time.  A
    # first emission at or before t=0 would dispatch before the servers'
    # initial gets are registered, flipping the handoff order.
    #
    # The recurrence is a running maximum up to float rounding: when the
    # gap is positive the source lands at e + (a - e), which is exactly
    # ``a`` whenever both roundings cancel (always, in practice).  The
    # vectorized path *proves* that per element: each candidate step is
    # recomputed with the same IEEE operations the scalar loop would
    # use, assuming the previous emission equals the running max — if
    # every recomputed step lands back on the running max, induction
    # makes the assumption true and the accumulate is exact.  Otherwise
    # the scalar loop runs.
    n = len(requests)
    arrivals_np = np.fromiter((request.arrival for request in requests),
                              dtype=np.float64, count=n)
    if not arrivals_np[0] > 0:
        raise BulkFallback(
            "first request would emit before the servers block")
    peaks = np.maximum.accumulate(arrivals_np)
    prev = np.empty(n)
    prev[0] = 0.0
    prev[1:] = peaks[:-1]
    deltas = arrivals_np - prev
    gaps = deltas > 0
    candidates = np.where(gaps, prev + deltas, prev)
    if bool((candidates == peaks).all()):
        emissions_np = peaks
        sleeps = int(gaps.sum())
    else:  # rounding drift: replay the recurrence one float at a time
        emission = 0.0
        sleeps = 0
        emissions: List[float] = []
        append = emissions.append
        for arrival in arrivals_np.tolist():
            delta = arrival - emission
            if delta > 0:
                emission = emission + delta
                sleeps += 1
            append(emission)
        emissions_np = np.asarray(emissions)

    if cap == 1 and wait == 0.0:
        replay = _replay_serial(requests, arrivals_np, emissions_np, model,
                                cores)
    else:
        replay = _replay_batched(requests, emissions_np.tolist(), model,
                                 cores, cap, wait)
    latencies, batch_cycles, core_puts, core_depths, gets_and_holds, \
        makespan = replay

    # -- accumulate results (no fallbacks past this point) ------------
    if registry is None:
        registry = StatsRegistry()
    scope = registry.scope("serve")
    latency = scope.distribution("latency")
    completed = scope.counter("completed")
    batches = scope.counter("batches")
    busy_cycles = scope.register("busy_cycles", Counter(0.0))
    latency.record_many(latencies)
    completed.value += len(latencies)
    batches.value += len(batch_cycles)
    busy = busy_cycles.value
    for cycles in batch_cycles:  # float adds are order-sensitive
        busy += cycles
    busy_cycles.value = busy

    capacity = max(1, len(requests))
    for i in range(cores):
        puts = Counter()
        puts.value = core_puts[i]
        registry.register(f"serve.core{i}.queue.total_puts", puts)
        depth = Occupancy(capacity)
        depth.samples, depth.total, depth.peak = core_depths[i]
        registry.register(f"serve.core{i}.queue.depth", depth)

    # Engine event count: initial resumes for the source and servers,
    # one put resume per request plus one sleep resume per positive gap,
    # per batch one resume per resolved get plus the hold sleep (if any)
    # plus the service sleep, and one closed-queue get per server.
    dispatched = Counter()
    dispatched.value = (1 + cores + len(requests) + sleeps
                        + gets_and_holds + len(batch_cycles) + cores)
    registry.register("serve.engine.dispatched", dispatched)

    in_slo = 0
    if slo is not None:
        # The resilient DES with only an SLO runs the clean schedule and
        # adds the drop/abort counters (all zero) plus the in-SLO count;
        # mirror that registry layout here, with the count vectorized.
        scope.counter("shed")
        scope.counter("expired")
        scope.counter("aborts")
        in_slo = int((np.asarray(latencies) <= slo).sum())
        scope.counter("in_slo").value = in_slo

    return ServeResult(
        label=model.label, policy=policy.name, offered=offered, cores=cores,
        requests=len(requests), completed=int(completed.value),
        makespan=makespan, latency=latency,
        first_arrival=float(arrivals_np.min()),
        stats=registry.to_dict(),
        slo=slo, in_slo=in_slo)


def _replay_serial(requests: Sequence[Request], arrivals_np: "np.ndarray",
                   emissions_np: "np.ndarray", model: ServiceModel,
                   cores: int):
    """Single-request batches: fifo, or a batcher with ``max_batch=1``.

    Per-core service order equals emission order, so the whole core
    reduces to the Lindley recurrence ``start = max(done, emission)``
    (a pure comparison — no float arithmetic), ``done = start + cycles``.
    The scalar loop only tracks completion times and backlog depth; the
    per-request latency math and the cross-core completion merge run as
    numpy array operations (IEEE-identical to the DES's scalar floats).
    """
    cycles_one = model.cycles_for(1)
    if not cycles_one > 0:
        raise BulkFallback(f"non-positive service time {cycles_one!r}")
    n = len(requests)
    lanes = np.fromiter((request.seq for request in requests),
                        dtype=np.int64, count=n) % cores

    core_puts: List[int] = []
    core_depths: List[DepthStats] = []
    done_parts: List[np.ndarray] = []
    latency_parts: List[np.ndarray] = []
    for core in range(cores):
        lane = lanes == core
        lane_emissions = emissions_np[lane].tolist()
        dones: List[float] = []
        push = dones.append
        t_free = 0.0  # the servers block at t=0; first emission is > 0
        backlog = 0
        samples = 0
        depth_total = 0
        depth_peak = 0
        for e in lane_emissions:
            while backlog and t_free < e:
                # The freed server pops the backlog head and serves it.
                backlog -= 1
                t_free = t_free + cycles_one
                push(t_free)
            if t_free == e:
                raise BulkFallback("emission tied with a batch completion")
            if t_free < e:
                # Blocked server: the put hands off directly (depth 0).
                samples += 1
                t_free = e + cycles_one
                push(t_free)
            else:
                # Busy server: the put appends, sampling the live depth.
                backlog += 1
                samples += 1
                depth_total += backlog
                if backlog > depth_peak:
                    depth_peak = backlog
        while backlog:
            backlog -= 1
            t_free = t_free + cycles_one
            push(t_free)
        core_puts.append(len(lane_emissions))
        core_depths.append((samples, depth_total, depth_peak))
        done_np = np.asarray(dones)
        done_parts.append(done_np)
        latency_parts.append(done_np - arrivals_np[lane])

    all_dones = np.concatenate(done_parts)
    order = np.argsort(all_dones, kind="stable")
    sorted_dones = all_dones[order]
    if sorted_dones.size > 1 and bool(
            (sorted_dones[1:] == sorted_dones[:-1]).any()):
        raise BulkFallback("batch completions tied across cores")
    latencies = np.concatenate(latency_parts)[order]
    # Every batch is one queue get and no hold sleep: n engine events.
    return (latencies, [cycles_one] * n, core_puts, core_depths, n,
            float(sorted_dones[-1]))


def _replay_batched(requests: Sequence[Request], emissions: List[float],
                    model: ServiceModel, cores: int, cap: Optional[int],
                    wait: float):
    """Explicit backlog replay for batching policies (size, deadline)."""
    per_core: List[List[Tuple[float, Request]]] = [[] for _ in range(cores)]
    for emission, request in zip(emissions, requests):
        per_core[request.seq % cores].append((emission, request))

    # Batches: (done, cycles, requests, held) with held = 1 when the
    # deadline hold sleep ran (its engine dispatch must be counted).
    cycles_by_size = {}
    all_batches: List[Tuple[float, float, List[Request], int]] = []
    core_depths: List[DepthStats] = []
    for core_emissions in per_core:
        backlog: deque = deque()
        idx = 0
        pending = len(core_emissions)
        t_free: Optional[float] = None  # None = blocked on get()
        depth_samples = 0
        depth_total = 0
        depth_peak = 0
        while idx < pending or backlog:
            if t_free is None:
                # Blocked server: the next put hands off directly.  The
                # backlog is empty by construction (a waiting getter
                # implies an empty queue), and the server's drain runs
                # before the source can emit again, so the batch starts
                # as just this request.
                start, first = core_emissions[idx]
                idx += 1
                depth_samples += 1  # handoff samples the (empty) queue
            else:
                # Busy server: strictly-earlier emissions append to the
                # backlog, sampling the depth after each append.
                while (idx < pending
                       and core_emissions[idx][0] < t_free):
                    backlog.append(core_emissions[idx][1])
                    level = len(backlog)
                    depth_samples += 1
                    depth_total += level
                    if level > depth_peak:
                        depth_peak = level
                    idx += 1
                if idx < pending and core_emissions[idx][0] == t_free:
                    raise BulkFallback(
                        "emission tied with a batch completion")
                if not backlog:
                    t_free = None
                    continue
                start = t_free
                first = backlog.popleft()
            batch = [first]
            held = 0
            if wait > 0.0:
                # Deadline hold: absorb every emission strictly before
                # the deadline, then drain at the deadline instant.
                deadline = start + wait
                while (idx < pending
                       and core_emissions[idx][0] < deadline):
                    backlog.append(core_emissions[idx][1])
                    level = len(backlog)
                    depth_samples += 1
                    depth_total += level
                    if level > depth_peak:
                        depth_peak = level
                    idx += 1
                if idx < pending and core_emissions[idx][0] == deadline:
                    raise BulkFallback(
                        "emission tied with a batch deadline")
                start = deadline
                held = 1
            while (cap is None or len(batch) < cap) and backlog:
                batch.append(backlog.popleft())
            size = len(batch)
            cycles = cycles_by_size.get(size)
            if cycles is None:  # the model is deterministic in size
                cycles = model.cycles_for(size)
                if not cycles > 0:
                    raise BulkFallback(
                        f"non-positive service time {cycles!r}")
                cycles_by_size[size] = cycles
            done = start + cycles
            all_batches.append((done, cycles, batch, held))
            t_free = done
        core_depths.append((depth_samples, depth_total, depth_peak))

    # -- global completion order --------------------------------------
    # Per-core completions are strictly increasing (positive service
    # times), so an exact tie is always cross-core — and the DES's
    # float-accumulation order across tied completions depends on event
    # sequence numbers the replay does not model.
    all_batches.sort(key=lambda b: b[0])
    for earlier, later in zip(all_batches, all_batches[1:]):
        if earlier[0] == later[0]:
            raise BulkFallback("batch completions tied across cores")

    latencies: List[float] = []
    batch_cycles: List[float] = []
    gets_and_holds = 0
    for done, cycles, batch, held in all_batches:
        batch_cycles.append(cycles)
        gets_and_holds += len(batch) + held
        for request in batch:
            latencies.append(done - request.arrival)
    return (latencies, batch_cycles, [len(core) for core in per_core],
            core_depths, gets_and_holds, all_batches[-1][0])
