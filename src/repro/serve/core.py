"""The transport-agnostic serving core.

Everything the serving layer *decides* — admission bounds, load
shedding, per-request deadlines, SLO accounting, walker-fault capacity,
and the degraded-mode controller — lives here as one clock-free state
machine, :class:`ServingCore`.  The core never schedules and never
sleeps: every method takes explicit ``now`` timestamps, so any driver
that can produce a monotonic time can run it.

Three drivers exist:

* the discrete-event path (:mod:`repro.serve.simulate`) feeds it
  simulated cycles from the event engine — the figure-rendering path,
  pinned byte-for-byte by the committed golden reports;
* the vectorized ``--bulk`` replay (:mod:`repro.serve.bulk`) shares its
  validation and result types and falls back to the DES driver on any
  contended schedule;
* the wall-clock path (:mod:`repro.live`) maps ``time.monotonic`` onto
  cycles and drives the same state machine from asyncio.

Because the core is pure policy over timestamps, proving the extraction
behavior-preserving reduces to proving the DES driver emits the same
event schedule — which the golden fig-serve report and the bulk/DES
differential suites check bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ServeError
from ..obs import Counter, Distribution
from .arrivals import Request
from .control import Controller, ControllerSpec
from .faults import CoreCapacity, WalkerFaultModel, build_capacities
from .policies import (BatchBySize, SchedulingPolicy, admission_depth,
                       request_timeout)
from .service import ServiceModel


@dataclass(frozen=True)
class ResilienceConfig:
    """Opt-in resilience settings for one serving run.

    ``slo`` is the end-to-end latency target in cycles (defines the
    goodput numerator, and the controller's setpoint).  ``faults`` is a
    seeded walker-death schedule; when it can fire, ``fallback`` must
    supply the host-core service model the core degrades to once all its
    walkers are dead.  ``controller`` closes the loop from windowed p99
    to the admission/batching knobs and requires an SLO.
    """

    slo: Optional[float] = None
    faults: Optional[WalkerFaultModel] = None
    controller: Optional[ControllerSpec] = None
    fallback: Optional[ServiceModel] = None

    def __post_init__(self) -> None:
        if self.slo is not None and not self.slo > 0:
            raise ServeError(f"SLO must be > 0 cycles, got {self.slo!r}")
        if self.faults is not None and self.faults.active \
                and self.fallback is None:
            raise ServeError(
                "an active walker-fault model needs a host fallback "
                "service model (cores must keep serving when all their "
                "walkers are dead)")
        if self.controller is not None and self.slo is None:
            raise ServeError(
                "a serve controller needs an SLO to regulate against "
                "(pass --serve-slo with --serve-controller)")

    @property
    def active(self) -> bool:
        """Whether any resilience feature is actually switched on."""
        return (self.slo is not None
                or (self.faults is not None and self.faults.active)
                or self.controller is not None)


@dataclass
class ServeResult:
    """Outcome of one open-loop serving run at one offered load."""

    label: str                  # backend label (from the service model)
    policy: str                 # scheduling policy name
    offered: float              # offered load, requests per kilocycle
    cores: int
    requests: int               # requests offered
    completed: int              # requests served (== requests when drained)
    makespan: float             # cycles until the last completion
    latency: Distribution       # end-to-end request latency, cycles
    first_arrival: float = 0.0  # when the first request arrived
    stats: Dict[str, Any] = field(default_factory=dict)
    shed: int = 0               # arrivals rejected at admission
    expired: int = 0            # requests dropped past their deadline
    faults: int = 0             # walker deaths that landed within the run
    slo: Optional[float] = None  # latency SLO in cycles (None = no SLO)
    in_slo: int = 0             # completions within the SLO

    @property
    def achieved(self) -> float:
        """Achieved throughput in requests per kilocycle (saturates at
        service capacity when the offered load exceeds it).

        Measured over the window the system actually had work: from the
        first arrival to the last completion.  Counting the idle lead-in
        before the first request (as an earlier version did) understated
        throughput at low offered loads and small request counts, where
        the lead-in is a visible fraction of the makespan.
        """
        span = self.makespan - self.first_arrival
        if span <= 0:
            return 0.0
        return self.completed * 1000.0 / span

    @property
    def goodput(self) -> float:
        """In-SLO completions per kilocycle (== achieved when no SLO).

        The resilience figure's headline metric: served work only counts
        when it lands inside the latency target, so shedding that keeps
        the remaining traffic in-SLO can *raise* goodput even as it
        lowers raw throughput.
        """
        if self.slo is None:
            return self.achieved
        span = self.makespan - self.first_arrival
        if span <= 0:
            return 0.0
        return self.in_slo * 1000.0 / span

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered requests rejected at admission."""
        return self.shed / self.requests if self.requests else 0.0

    @property
    def p50(self) -> float:
        return self.latency.p50

    @property
    def p95(self) -> float:
        return self.latency.p95

    @property
    def p99(self) -> float:
        return self.latency.p99


def validate_run(requests: Sequence[Request], model: ServiceModel,
                 cores: int) -> None:
    """Shared admission checks for every serving driver (DES, bulk, live)."""
    if cores < 1:
        raise ServeError(f"need at least one core, got {cores}")
    if not requests:
        raise ServeError("need at least one request")
    for request in requests:
        if request.keys != model.keys_per_request:
            raise ServeError(
                f"request {request.seq} carries {request.keys} keys but the "
                f"service model was calibrated for {model.keys_per_request}")


class ServingCore:
    """The serving state machine, shared by every transport driver.

    Owns the serve-scope metrics (latency, completion/batch counters,
    shed/expired/abort/SLO accounting), the per-core fault capacities,
    and the controller's windowed-p99 loop.  Drivers own *time*: they
    decide when arrivals, batch completions and controller ticks happen
    and call in with explicit ``now`` values; the core decides what each
    of those events *means*.  On one discrete-event engine every
    read/write is deterministically ordered; the wall-clock driver gets
    the same single-threaded ordering from the asyncio event loop.
    """

    def __init__(self, policy: SchedulingPolicy, model: ServiceModel,
                 cores: int, *, queue_depth: Optional[int] = None,
                 resilience: Optional[ResilienceConfig] = None,
                 scope) -> None:
        self.scope = scope
        self.model = model
        self.cores = cores
        # Serve-scope metrics, in the registration order the resilient
        # DES path always used (snapshot layout is part of the golden
        # contract).
        self.latency = scope.distribution("latency")
        self.completed = scope.counter("completed")
        self.batches = scope.counter("batches")
        self.busy_cycles = scope.register("busy_cycles", Counter(0.0))
        self.base = policy
        self.active = policy
        self.timeout = request_timeout(policy)
        self.shed_declared = admission_depth(policy) is not None
        depths = [d for d in (queue_depth, admission_depth(policy))
                  if d is not None]
        self.static_depth = min(depths) if depths else None
        self.slo = resilience.slo if resilience is not None else None
        self.shed = scope.counter("shed")
        self.expired = scope.counter("expired")
        self.aborts = scope.counter("aborts")
        self.in_slo = (scope.counter("in_slo")
                       if self.slo is not None else None)
        self.servers_live = cores
        self.last_done = 0.0
        self.completions = 0
        self.controller: Optional[Controller] = None
        self.controller_depth: Optional[int] = None
        self.spares_used = 0
        self._window: Optional[Distribution] = None
        if resilience is not None and resilience.controller is not None:
            self.controller = Controller(resilience.controller,
                                         resilience.slo)
            self._window = Distribution()
        self.faults_model = resilience.faults if resilience is not None \
            else None
        fallback = resilience.fallback if resilience is not None else None
        self.capacities: List[CoreCapacity] = build_capacities(
            self.faults_model, cores, model, fallback)
        self.fault_total = 0

    # -- admission -------------------------------------------------------

    def bound(self) -> Optional[int]:
        """The admission depth currently in force (None = unbounded)."""
        depths = [d for d in (self.static_depth, self.controller_depth)
                  if d is not None]
        return min(depths) if depths else None

    def can_shed(self) -> bool:
        """Whether a full queue sheds (vs. raising): shedding must be
        *declared*, by a ``shed:`` wrapper or a controller degradation."""
        return self.shed_declared or self.controller_depth is not None

    def try_admit(self, depth: int, queue_name: str) -> bool:
        """Admit an arrival finding ``depth`` requests queued on its core.

        Returns False when the arrival is shed (counted); raises when the
        queue is at its bound and shedding is not declared — the
        open-loop contract that admission never silently blocks.
        """
        # Inline bound(): this runs once per arrival on the hot path.
        bound = self.static_depth
        controller_depth = self.controller_depth
        if controller_depth is not None and (bound is None
                                             or controller_depth < bound):
            bound = controller_depth
        if bound is None or depth < bound:
            return True
        if self.can_shed():
            self.shed.value += 1
            return False
        raise ServeError(
            f"admission queue {queue_name!r} is full ({depth} "
            f"queued, bound {bound}) and no shed depth is declared; "
            f"the open-loop source must never block — wrap the policy "
            f"in 'shed:N' or raise queue_depth")

    # -- deadlines -------------------------------------------------------

    def drop_doomed(self, batch: List[Request], now: float,
                    capacity: CoreCapacity) -> List[Request]:
        """Drop requests that cannot finish by their deadline.

        Covers both queued expiry (deadline already past) and in-service
        expiry (deadline inside the batch's service window): serving a
        request that will miss its deadline anyway is wasted capacity,
        so the core drops it *before* committing — the all-or-nothing
        offload model.  Shrinking the batch can shorten the service
        time, so filter to a fixed point.
        """
        timeout = self.timeout
        if timeout is None:
            return batch
        while batch:
            cycles = capacity.cycles_for(len(batch), now)
            alive = [r for r in batch if r.arrival + timeout >= now + cycles]
            if len(alive) == len(batch):
                break
            self.expired.value += len(batch) - len(alive)
            batch = alive
        return batch

    # -- completion accounting -------------------------------------------

    def finish_batch(self, batch: Sequence[Request], cycles: float,
                     done: float) -> None:
        """Account one served batch: throughput, latency, SLO, window."""
        self.batches.value += 1
        self.busy_cycles.value += cycles
        record = self.latency.record
        slo = self.slo
        in_slo = self.in_slo
        window = self._window
        for request in batch:
            request_latency = done - request.arrival
            record(request_latency)
            if in_slo is not None and request_latency <= slo:
                in_slo.value += 1
            if window is not None:
                window.record(request_latency)
        self.completed.value += len(batch)
        self.completions += len(batch)
        self.last_done = done

    def record_abort(self, busy: float) -> None:
        """Account a batch aborted mid-service by a walker death."""
        self.busy_cycles.value += busy
        self.aborts.value += 1

    def server_done(self) -> None:
        """One server loop retired; finalize() waits for all of them."""
        self.servers_live -= 1

    # -- controller ------------------------------------------------------

    def window_p99(self) -> Optional[float]:
        """This window's p99 (None when empty); resets the window."""
        window = self._window
        if window is None or window.count == 0:
            return None
        p99 = window.p99
        window.reset()
        return p99

    def controller_tick(self, now: float) -> int:
        """One controller window: observe the p99, apply the level change.

        Returns the level delta (-1/0/+1) so drivers can layer their own
        adaptations (the live path adds elastic walker allocation) on
        the same observation.
        """
        controller = self.controller
        spec = controller.spec
        delta = controller.observe(self.window_p99())
        if delta == 0:
            return 0
        if spec.action in ("shed", "all"):
            self.controller_depth = spec.shed_depth_at(controller.level)
        if spec.action in ("batch", "all"):
            self.active = (BatchBySize(spec.batch) if controller.level > 0
                           else self.base)
        if (delta > 0 and spec.action in ("walkers", "all")
                and self.spares_used < spec.spares):
            # Repair the most-degraded core with one spare walker.
            worst = max(self.capacities, key=lambda cap: cap.dead(now))
            if worst.repair(now):
                self.spares_used += 1
        return delta

    # -- finalization ----------------------------------------------------

    def finalize(self, end: float) -> float:
        """Compute the makespan and publish end-of-run stats.

        With a controller the driver runs up to one idle window past the
        last completion; the makespan is still the last completion.
        """
        makespan = (self.last_done
                    if self.controller is not None and self.completions
                    else end)
        self.fault_total = 0
        if self.faults_model is not None and self.faults_model.active:
            self.fault_total = sum(cap.faults_by(makespan)
                                   for cap in self.capacities)
            self.scope.counter("faults").value = self.fault_total
        if self.controller is not None:
            controller_scope = self.scope.scope("controller")
            controller_scope.counter("windows").value = \
                self.controller.windows
            controller_scope.counter("breaches").value = \
                self.controller.breaches
            controller_scope.counter("degradations").value = \
                self.controller.degradations
            controller_scope.counter("recoveries").value = \
                self.controller.recoveries
            controller_scope.counter("peak_level").value = \
                self.controller.peak_level
        return makespan

    def check_conservation(self, offered: int) -> None:
        """Every offered request must be served, shed or expired."""
        served = int(self.completed.value)
        shed = int(self.shed.value)
        expired = int(self.expired.value)
        if served + shed + expired != offered:
            raise ServeError(
                f"request conservation violated: {offered} arrived but "
                f"{served} served + {shed} shed + {expired} expired")
