"""Seeded walker-fault model for the serving layer.

The serving simulation composes calibrated service models, so a walker
fault shows up as a *capacity* event: a core that loses ``k`` of its
``W`` walkers serves every batch at ``W / (W - k)`` times the calibrated
cycles (the surviving walkers redistribute the traversal work), and a
core whose walkers are all dead falls back to the host-core service
model — the paper's all-or-nothing offload abort, priced by a separate
calibration.  A batch in flight when a walker dies is aborted at the
death instant and re-served from scratch under the degraded capacity,
matching the machine-level semantics in :mod:`repro.widx.machine`.

**Determinism.**  Whether and when each walker dies is a pure function of
``(seed, core, walker)`` — the same content-hash draw discipline as
:class:`repro.harness.chaos.ChaosSpec` — never of simulation state.  The
draw is shared across fault rates: raising the rate only *compresses*
the same death schedule toward zero, which is what makes goodput weakly
non-increasing in the fault rate (every capacity loss happens no later).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import stable_digest
from ..errors import ServeError
from .service import ServiceModel

#: Death-time scale: fault rates are quoted in deaths per walker per
#: megacycle, the natural unit for runs lasting tens of kilocycles.
CYCLES_PER_RATE_UNIT = 1.0e6


def fault_draw(seed: int, site: str, key: str) -> float:
    """Deterministic uniform draw in [0, 1) for one (site, key).

    Same digest formula as :meth:`repro.harness.chaos.ChaosSpec.draw`, so
    simulation-level faults live in the same seeded universe as the
    campaign-level chaos injector.
    """
    digest = stable_digest({"chaos": seed, "site": site, "key": key})
    return int(digest[:13], 16) / 16.0 ** 13


@dataclass(frozen=True)
class WalkerFaultModel:
    """Seeded fail-stop schedule for the walkers behind each serving core.

    ``rate`` is in deaths per walker per megacycle; each walker dies at
    most once, at ``-ln(1 - u) / rate`` megacycles for its own uniform
    draw ``u`` (exponential time-to-failure).  ``rate <= 0`` disables
    faults entirely — the schedule is empty and the serving path is
    bit-identical to a fault-free run.
    """

    seed: int
    rate: float                   # deaths per walker per megacycle
    walkers_per_core: int

    def __post_init__(self) -> None:
        if not (self.rate >= 0 and math.isfinite(self.rate)):
            raise ServeError(
                f"fault rate must be finite and >= 0, got {self.rate!r}")
        if self.walkers_per_core < 0:
            raise ServeError(f"walkers_per_core must be >= 0, "
                             f"got {self.walkers_per_core}")

    @property
    def active(self) -> bool:
        """Whether this model can inject any fault at all."""
        return self.rate > 0 and self.walkers_per_core > 0

    def death_times(self, core: int) -> Tuple[float, ...]:
        """Sorted death cycles for the walkers of ``core`` (may be empty)."""
        if not self.active:
            return ()
        times = []
        for walker in range(self.walkers_per_core):
            u = fault_draw(self.seed, "walker-death",
                           f"core{core}/walker{walker}")
            times.append(-math.log1p(-u) * CYCLES_PER_RATE_UNIT / self.rate)
        return tuple(sorted(times))


class CoreCapacity:
    """One core's time-varying service capacity under walker deaths.

    Capacity at time ``t`` is a pure function of the (static) death
    schedule and any controller-issued repairs: ``dead(t)`` walkers are
    down, so batches cost ``W / (W - dead)`` times the calibrated cycles,
    or the host fallback model's cycles once every walker is dead.
    Purity is what keeps the serving run deterministic — no event needs
    to fire for a death to take effect.
    """

    def __init__(self, deaths: Tuple[float, ...], walkers: int,
                 model: ServiceModel,
                 fallback: Optional[ServiceModel]) -> None:
        if walkers > 0 and deaths and fallback is None:
            raise ServeError(
                "a walker-fault schedule needs a host fallback service "
                "model (the core must keep serving when all walkers die)")
        self.deaths = deaths
        self.walkers = walkers
        self.model = model
        self.fallback = fallback
        self.repairs: List[float] = []
        self._scaled: Dict[int, ServiceModel] = {}

    def dead(self, now: float) -> int:
        """Dead walkers at time ``now`` (deaths crossed minus repairs)."""
        if not self.deaths:
            return 0
        crossed = 0
        for death in self.deaths:
            if death <= now:
                crossed += 1
            else:
                break
        repaired = sum(1 for repair in self.repairs if repair <= now)
        return max(0, min(self.walkers, crossed - repaired))

    def repair(self, now: float) -> bool:
        """Reassign one spare walker at ``now`` (controller action).

        Returns False when nothing is dead to repair.
        """
        if self.dead(now) == 0:
            return False
        self.repairs.append(now)
        return True

    def next_death_after(self, now: float) -> Optional[float]:
        """The first death strictly after ``now`` (None when no more)."""
        for death in self.deaths:
            if death > now:
                return death
        return None

    def cycles_for(self, requests: int, now: float) -> float:
        """Service cycles for a batch starting at ``now``."""
        if not self.deaths:  # fault-free core: no scaling, ever
            return self.model.cycles_for(requests)
        dead = self.dead(now)
        if dead == 0:
            return self.model.cycles_for(requests)
        if dead >= self.walkers:
            return self.fallback.cycles_for(requests)
        scaled = self._scaled.get(dead)
        if scaled is None:
            scaled = self.model.scaled(self.walkers / (self.walkers - dead))
            self._scaled[dead] = scaled
        return scaled.cycles_for(requests)

    def faults_by(self, horizon: float) -> int:
        """Deaths that actually landed within the run (for reporting)."""
        return sum(1 for death in self.deaths if death <= horizon)


def build_capacities(faults: Optional[WalkerFaultModel], cores: int,
                     model: ServiceModel,
                     fallback: Optional[ServiceModel]) -> List[CoreCapacity]:
    """Per-core capacity timelines for one serving run."""
    if faults is None or not faults.active:
        return [CoreCapacity((), 0, model, None) for _ in range(cores)]
    return [CoreCapacity(faults.death_times(core), faults.walkers_per_core,
                         model, fallback)
            for core in range(cores)]
