"""Calibrated service-time models for the serving layer.

The serving simulation is two-level.  The *calibration* level runs the
detailed simulators once per (backend, batch size) to measure how many
cycles one indexing backend spends serving a probe batch end to end —
including, for Widx, the per-offload configuration cost that makes
batching worthwhile.  Those measurements flow through the measurement
campaign and persistent cache exactly like every figure's points.  The
*queueing* level (:mod:`repro.serve.simulate`) then composes the
calibrated cycle counts in a fast discrete-event simulation of arrival
queues and schedulers — which is what "offered load" means on this
cycle-approximate substrate (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..config import SystemConfig, DEFAULT_CONFIG
from ..cpu.inorder import InOrderCore
from ..cpu.ooo import OutOfOrderCore
from ..cpu.timing import warm_hash_index
from ..cpu.trace import ProbeTraceGenerator
from ..db.column import Column
from ..db.hashtable import HashIndex
from ..errors import ServeError
from ..mem.hierarchy import MemoryHierarchy
from ..obs import StatsRegistry
from ..sim.watchdog import Watchdog
from ..widx.offload import offload_batched_tree, offload_probe

#: Backends a service model can be calibrated for.
SERVICE_BACKENDS = ("inorder", "ooo", "widx", "pim", "batched")


@dataclass
class ServiceMeasurement:
    """Cycles one backend spends serving one probe batch, measured on the
    detailed simulators.  This is what the campaign caches per point."""

    backend: str                # "inorder" | "ooo" | "widx" | "pim"
    kind: str                   # workload kind ("kernel")
    name: str                   # workload name ("Small")
    walkers: int                # Widx walker count (0 for core backends)
    mode: str                   # Widx organization ("" for core backends)
    batch_keys: int             # probe keys in the measured batch
    cycles: float               # end-to-end service cycles for the batch
    stats: Optional[Dict[str, Any]] = None  # registry snapshot (to_dict)

    @property
    def cycles_per_key(self) -> float:
        return self.cycles / self.batch_keys


def measure_service(index: HashIndex, probe_column: Column, *,
                    backend: str, batch_keys: int,
                    config: SystemConfig = DEFAULT_CONFIG,
                    walkers: int = 0, mode: str = "",
                    watchdog: Optional[Watchdog] = None
                    ) -> ServiceMeasurement:
    """Measure the service time of one probe batch on one backend.

    Core backends run the probe loop directly on a warmed hierarchy (no
    warmup/steady-state split — a served batch pays its whole cost, which
    is the quantity the queueing level needs).  The Widx backend runs a
    real offload and charges ``total_cycles + config_cycles``: each
    serving-layer batch is one offload, so the per-offload configuration
    sequence is part of its service time.  The PIM backend does the same
    on bank-side walkers; its ``config_cycles`` additionally carries the
    host↔PIM command/launch latency, which therefore lands — strictly
    additively — on every served batch's critical path.
    """
    if batch_keys < 1:
        raise ServeError(f"batch_keys must be >= 1, got {batch_keys}")
    if batch_keys > len(probe_column.values):
        raise ServeError(
            f"batch_keys={batch_keys} exceeds the workload's "
            f"{len(probe_column.values)} probe keys")

    if backend == "batched":
        # Level-wise batched B+-tree offload: one serving-layer batch is
        # one coupled-mode offload over the batch's keys, so — like widx —
        # the per-offload configuration cost is part of the service time.
        if walkers < 1:
            raise ServeError(
                "batched service measurement needs walkers >= 1")
        widx_config = config.with_widx(num_walkers=walkers,
                                       mode=mode or "coupled")
        outcome = offload_batched_tree(index, probe_column,
                                       config=widx_config,
                                       probes=batch_keys)
        return ServiceMeasurement(
            backend=backend, kind="", name="", walkers=walkers,
            mode=mode or "coupled", batch_keys=batch_keys,
            cycles=outcome.run.total_cycles + outcome.run.config_cycles,
            stats=outcome.stats)

    if backend in ("widx", "pim"):
        if walkers < 1:
            raise ServeError(
                f"{backend} service measurement needs walkers >= 1")
        widx_config = config.with_widx(
            num_walkers=walkers, mode=mode or "shared",
            placement="pim" if backend == "pim" else config.widx.placement)
        outcome = offload_probe(index, probe_column, config=widx_config,
                                probes=batch_keys, watchdog=watchdog)
        return ServiceMeasurement(
            backend=backend, kind="", name="", walkers=walkers,
            mode=mode or "shared", batch_keys=batch_keys,
            cycles=outcome.run.total_cycles + outcome.run.config_cycles,
            stats=outcome.stats)

    if backend not in ("inorder", "ooo"):
        raise ServeError(
            f"unknown service backend {backend!r}; "
            f"choose from {SERVICE_BACKENDS}")
    if walkers or mode:
        raise ServeError(
            f"core backend {backend!r} takes no walkers/mode")
    memory = MemoryHierarchy(config)
    warm_hash_index(memory, index)
    if backend == "ooo":
        model = OutOfOrderCore(config.ooo, memory)
    else:
        model = InOrderCore(config.inorder, memory)
    generator = ProbeTraceGenerator(index, probe_column)
    for uops in generator.stream(range(batch_keys)):
        model.execute(uops)
    registry = StatsRegistry()
    model.register_into(registry, f"cpu.{backend}")
    memory.register_into(registry, "mem")
    return ServiceMeasurement(
        backend=backend, kind="", name="", walkers=0, mode="",
        batch_keys=batch_keys, cycles=model.completion_time,
        stats=registry.to_dict())


class ServiceModel:
    """Cycles-per-batch as a function of batch size, from calibration.

    Built from :class:`ServiceMeasurement` points at a fixed
    ``keys_per_request``; queries are in *requests*.  Between calibrated
    sizes the model interpolates linearly; beyond the largest it
    extrapolates with the marginal cost of the last calibrated segment
    (per-key cost shrinks with batch size — warm-up and configuration
    amortize — so linear extrapolation of the tail is conservative in the
    right direction).
    """

    def __init__(self, label: str, keys_per_request: int,
                 cycles_by_batch: Dict[int, float]) -> None:
        if keys_per_request < 1:
            raise ServeError(
                f"keys_per_request must be >= 1, got {keys_per_request}")
        if not cycles_by_batch:
            raise ServeError(f"service model {label!r} needs at least one "
                             f"calibrated batch size")
        for batch, cycles in cycles_by_batch.items():
            if batch < 1:
                raise ServeError(f"calibrated batch size must be >= 1, "
                                 f"got {batch}")
            if not cycles > 0:
                raise ServeError(f"calibrated cycles must be positive, "
                                 f"got {cycles!r} at batch {batch}")
        self.label = label
        self.keys_per_request = keys_per_request
        self._batches = sorted(cycles_by_batch)
        self._cycles = {int(b): float(c) for b, c in cycles_by_batch.items()}

    @classmethod
    def from_measurements(cls, label: str, keys_per_request: int,
                          measurements) -> "ServiceModel":
        """Build a model from measurements at multiples of
        ``keys_per_request`` keys."""
        cycles_by_batch: Dict[int, float] = {}
        for m in measurements:
            if m.batch_keys % keys_per_request:
                raise ServeError(
                    f"measurement batch_keys={m.batch_keys} is not a "
                    f"multiple of keys_per_request={keys_per_request}")
            cycles_by_batch[m.batch_keys // keys_per_request] = m.cycles
        return cls(label, keys_per_request, cycles_by_batch)

    @property
    def calibrated_batches(self):
        """The calibrated batch sizes (in requests), sorted."""
        return list(self._batches)

    def scaled(self, factor: float) -> "ServiceModel":
        """A copy with every calibrated point scaled by ``factor``.

        The resilience layer's degraded-capacity model: a core that has
        lost ``k`` of its ``W`` walkers serves with the same curve shape
        at ``W / (W - k)`` times the cycles (traversal work redistributes
        evenly over the surviving walkers).
        """
        if not (factor > 0 and math.isfinite(factor)):
            raise ServeError(f"scale factor must be finite and > 0, "
                             f"got {factor!r}")
        return ServiceModel(
            self.label, self.keys_per_request,
            {batch: cycles * factor for batch, cycles in self._cycles.items()})

    def cycles_for(self, requests: int) -> float:
        """Service cycles for a batch of ``requests`` requests."""
        if requests < 1:
            raise ServeError(f"batch must hold >= 1 request, got {requests}")
        batches = self._batches
        cycles = self._cycles
        if requests in cycles:
            return cycles[requests]
        if requests < batches[0]:
            # Below the smallest calibration a batch still pays at least
            # the smallest batch's fixed costs; charge it whole.
            return cycles[batches[0]]
        if requests > batches[-1]:
            if len(batches) == 1:
                return cycles[batches[-1]] * requests / batches[-1]
            lo, hi = batches[-2], batches[-1]
            slope = (cycles[hi] - cycles[lo]) / (hi - lo)
            slope = max(slope, 0.0)
            return cycles[hi] + slope * (requests - hi)
        position = 0
        while batches[position + 1] < requests:
            position += 1
        lo, hi = batches[position], batches[position + 1]
        frac = (requests - lo) / (hi - lo)
        return cycles[lo] + (cycles[hi] - cycles[lo]) * frac

    def saturation_rate(self, batch: int = 1) -> float:
        """Peak per-server throughput in requests per kilocycle when every
        batch holds ``batch`` requests (``batch=1`` = FIFO service)."""
        return batch * 1000.0 / self.cycles_for(batch)

    def __repr__(self) -> str:
        points = ", ".join(f"{b}:{self._cycles[b]:.0f}" for b in self._batches)
        return (f"ServiceModel({self.label!r}, "
                f"keys_per_request={self.keys_per_request}, {{{points}}})")
