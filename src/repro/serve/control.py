"""Deterministic degraded-mode controller for the serving layer.

The controller closes the loop between observed tail latency and the
admission/batching knobs: it samples a windowed p99 from the completion
latencies, compares it to the SLO, and — after a hysteretic number of
consecutive breaches — degrades service (shed harder, switch to a
batching policy, or repair walkers from a spare pool).  Recovery is the
mirror image: enough consecutive in-SLO windows step the degradation
back down one level at a time.

Everything here is engine-free and pure: :class:`Controller` is a state
machine over p99 readings, so its hysteresis is unit-testable without a
simulation, and the serving path drives it from a deterministic
window-tick process.  Determinism of the whole run follows — the
controller sees the same readings in the same order on every run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ServeError

#: Actions a controller spec can request on SLO regression.
CONTROLLER_ACTIONS = ("shed", "batch", "walkers", "all")


@dataclass(frozen=True)
class ControllerSpec:
    """Parsed ``--serve-controller`` configuration.

    ``window`` is the sampling period in cycles; a breach is a window
    whose p99 completion latency exceeds ``margin * slo`` (the margin
    keeps the controller from oscillating exactly at the SLO boundary).
    ``breach`` consecutive breaches raise the degradation level by one,
    ``recover`` consecutive clean windows lower it by one.
    """

    window: float               # cycles per observation window
    breach: int = 2             # consecutive breached windows to degrade
    recover: int = 3            # consecutive clean windows to recover
    action: str = "shed"        # which knob(s) to turn: CONTROLLER_ACTIONS
    margin: float = 0.8         # degrade when p99 > margin * slo
    depth: int = 16             # base admission depth for "shed"
    batch: int = 4              # batch cap for "batch"
    spares: int = 2             # spare walkers for "walkers"
    max_level: int = 8          # degradation level ceiling

    def __post_init__(self) -> None:
        if not (self.window > 0 and math.isfinite(self.window)):
            raise ServeError(
                f"controller window must be finite and > 0, "
                f"got {self.window!r}")
        if self.breach < 1:
            raise ServeError(f"breach count must be >= 1, got {self.breach}")
        if self.recover < 1:
            raise ServeError(
                f"recover count must be >= 1, got {self.recover}")
        if self.action not in CONTROLLER_ACTIONS:
            raise ServeError(
                f"unknown controller action {self.action!r}; "
                f"choose from {CONTROLLER_ACTIONS}")
        if not (0 < self.margin <= 1):
            raise ServeError(
                f"margin must be in (0, 1], got {self.margin!r}")
        if self.depth < 1:
            raise ServeError(f"depth must be >= 1, got {self.depth}")
        if self.batch < 1:
            raise ServeError(f"batch must be >= 1, got {self.batch}")
        if self.spares < 0:
            raise ServeError(f"spares must be >= 0, got {self.spares}")
        if self.max_level < 1:
            raise ServeError(
                f"max_level must be >= 1, got {self.max_level}")

    def shed_depth_at(self, level: int) -> Optional[int]:
        """Admission depth the "shed" action imposes at ``level``.

        Level 0 means no controller-imposed depth; each level above
        halves the base depth (floor 1), so deeper degradation sheds
        harder.
        """
        if level <= 0:
            return None
        return max(1, self.depth >> (level - 1))


def parse_controller(spec: str) -> ControllerSpec:
    """Parse a ``--serve-controller`` spec string.

    Form: ``p99:WINDOW[:BREACH[:RECOVER[:ACTION]]]`` — e.g.
    ``p99:20000``, ``p99:20000:2:3:shed``, ``p99:50000:1:4:all``.
    Only the p99 signal is supported (it is what fig-serve reports and
    what the SLO is quoted against).
    """
    parts = spec.strip().split(":")
    if not parts or parts[0].lower() != "p99" or len(parts) < 2:
        raise ServeError(
            f"bad controller spec {spec!r}; want "
            f"'p99:WINDOW[:BREACH[:RECOVER[:ACTION]]]'")
    if len(parts) > 5:
        raise ServeError(
            f"bad controller spec {spec!r}: too many fields")
    try:
        window = float(parts[1])
        breach = int(parts[2]) if len(parts) > 2 else 2
        recover = int(parts[3]) if len(parts) > 3 else 3
    except ValueError as exc:
        raise ServeError(f"bad controller spec {spec!r}: {exc}") from exc
    action = parts[4].lower() if len(parts) > 4 else "shed"
    return ControllerSpec(window=window, breach=breach, recover=recover,
                          action=action)


class Controller:
    """Hysteretic degradation state machine over windowed p99 readings.

    ``observe`` consumes one window's p99 (or ``None`` for a window with
    no completions) and returns the *change* in degradation level (-1,
    0, or +1).  An empty window under a nonzero level counts as a breach
    — no completions while degraded means the system is still drowning,
    not that it recovered.
    """

    def __init__(self, spec: ControllerSpec, slo: float) -> None:
        if not (slo > 0 and math.isfinite(slo)):
            raise ServeError(f"SLO must be finite and > 0, got {slo!r}")
        self.spec = spec
        self.slo = float(slo)
        self.level = 0
        self.peak_level = 0
        self.windows = 0
        self.breaches = 0
        self.degradations = 0
        self.recoveries = 0
        self._breach_streak = 0
        self._clean_streak = 0

    def breached(self, p99: Optional[float]) -> bool:
        """Whether one window's p99 reading counts as an SLO breach."""
        if p99 is None:
            # An empty window is only evidence of trouble if we are
            # already degraded; at level 0 it is just an idle lull.
            return self.level > 0
        return p99 > self.spec.margin * self.slo

    def observe(self, p99: Optional[float]) -> int:
        """Consume one window's p99; return the level delta (-1/0/+1)."""
        self.windows += 1
        if self.breached(p99):
            self.breaches += 1
            self._breach_streak += 1
            self._clean_streak = 0
            if (self._breach_streak >= self.spec.breach
                    and self.level < self.spec.max_level):
                self.level += 1
                self.peak_level = max(self.peak_level, self.level)
                self.degradations += 1
                self._breach_streak = 0
                return 1
            return 0
        self._clean_streak += 1
        self._breach_streak = 0
        if self._clean_streak >= self.spec.recover and self.level > 0:
            self.level -= 1
            self.recoveries += 1
            self._clean_streak = 0
            return -1
        return 0

    def __repr__(self) -> str:
        return (f"Controller(level={self.level}, windows={self.windows}, "
                f"breaches={self.breaches}, slo={self.slo:g})")
