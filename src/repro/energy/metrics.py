"""Figure 11: indexing runtime, energy and energy-delay, normalized to OoO."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import WidxConfig
from .power import PowerModel


@dataclass(frozen=True)
class DesignPoint:
    """One bar group of Figure 11."""

    design: str
    runtime: float   # normalized to OoO = 1.0
    energy: float    # normalized
    edp: float       # normalized energy-delay product

    def as_row(self) -> tuple:
        """(design, runtime, energy, edp) tuple for reports."""
        return (self.design, round(self.runtime, 3), round(self.energy, 3),
                round(self.edp, 4))


@dataclass
class EnergyReport:
    """All three designs, normalized to the OoO baseline."""

    points: Dict[str, DesignPoint]

    def __getitem__(self, design: str) -> DesignPoint:
        return self.points[design]

    @property
    def widx_energy_saving(self) -> float:
        """Fractional energy reduction of Widx vs OoO (paper: 0.83)."""
        return 1.0 - self.points["widx"].energy

    @property
    def inorder_energy_saving(self) -> float:
        """Fractional energy reduction of in-order vs OoO (paper: 0.86)."""
        return 1.0 - self.points["inorder"].energy

    @property
    def widx_edp_gain_vs_ooo(self) -> float:
        """EDP improvement over OoO (paper: 17.5x)."""
        return 1.0 / self.points["widx"].edp

    @property
    def widx_edp_gain_vs_inorder(self) -> float:
        """EDP improvement over in-order (paper: 5.5x)."""
        return self.points["inorder"].edp / self.points["widx"].edp


def energy_report(runtime_cycles: Dict[str, float],
                  widx: WidxConfig = WidxConfig(),
                  model: PowerModel = PowerModel()) -> EnergyReport:
    """Build Figure 11 from measured indexing runtimes.

    ``runtime_cycles`` maps design name ('ooo', 'inorder', 'widx') to the
    measured indexing runtime in cycles (any consistent unit works — only
    ratios matter).
    """
    for required in ("ooo", "inorder", "widx"):
        if required not in runtime_cycles:
            raise ValueError(f"missing measured runtime for {required!r}")
    base_runtime = runtime_cycles["ooo"]
    base_energy = model.energy("ooo", base_runtime)
    points = {}
    for design, cycles in runtime_cycles.items():
        runtime = cycles / base_runtime
        energy = model.energy(design, cycles, widx=widx) / base_energy
        points[design] = DesignPoint(design=design, runtime=runtime,
                                     energy=energy, edp=runtime * energy)
    return EnergyReport(points)
