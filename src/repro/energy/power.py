"""Power and area constants (paper Section 6.3).

From the paper's synthesis (TSMC 40 nm, 2 GHz, high area-optimization):

* one Widx unit (with its 2-entry queues): **0.039 mm², 53 mW** peak;
* the full six-unit Widx (dispatcher + 4 walkers + producer):
  **0.24 mm², 320 mW**;
* ARM Cortex-A8 (in-order comparison core, same node, incl. L1):
  **1.3 mm², 480 mW** [Lotfi-Kamran et al. 2012];
* the OoO core's power is "Xeon's nominal operating power" [Rusu et al.];
  its idle power is 30% of nominal [Intel Xeon 5600 datasheet];
* private-cache power for the Widx-enabled design is a CACTI 6.5 estimate.

The OoO nominal and cache-activity values below are chosen so the model
reproduces the paper's Figure 11 anchors exactly at the paper's runtimes
(in-order: 2.2x slower, -86% energy; Widx: 3.1x faster, -83% energy; EDP
gains of 5.5x over in-order and 17.5x over OoO) — the energy *model* is
then applied to our measured runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import WidxConfig


@dataclass(frozen=True)
class PowerConstants:
    """All power/area constants in watts and mm² (40 nm, 2 GHz)."""

    widx_unit_area_mm2: float = 0.039
    widx_unit_power_w: float = 0.053
    a8_area_mm2: float = 1.3
    a8_power_w: float = 0.48
    ooo_nominal_power_w: float = 7.5
    ooo_idle_fraction: float = 0.30
    l1_active_power_w: float = 1.35   # CACTI estimate, L1-I/D activity

    @property
    def ooo_idle_power_w(self) -> float:
        return self.ooo_nominal_power_w * self.ooo_idle_fraction


POWER_CONSTANTS = PowerConstants()


@dataclass(frozen=True)
class AreaReport:
    """Section 6.3's area comparison."""

    widx_units: int
    widx_area_mm2: float
    a8_area_mm2: float

    @property
    def fraction_of_a8(self) -> float:
        return self.widx_area_mm2 / self.a8_area_mm2


class PowerModel:
    """Power draw of each evaluated design while indexing."""

    def __init__(self, constants: PowerConstants = POWER_CONSTANTS) -> None:
        self.constants = constants

    def widx_area(self, widx: WidxConfig) -> AreaReport:
        """Area of the configured Widx complex vs a Cortex-A8."""
        units = widx.num_units
        return AreaReport(
            widx_units=units,
            widx_area_mm2=units * self.constants.widx_unit_area_mm2,
            a8_area_mm2=self.constants.a8_area_mm2,
        )

    def widx_power(self, widx: WidxConfig) -> float:
        """Peak power of the Widx complex alone."""
        return widx.num_units * self.constants.widx_unit_power_w

    def design_power(self, design: str,
                     widx: WidxConfig = WidxConfig()) -> float:
        """Power while running the indexing phase on ``design``.

        ``ooo``: the OoO core at nominal power.
        ``inorder``: the A8-like core.
        ``widx``: the OoO core idling (full offload) + the Widx units +
        the host core's private caches, which Widx keeps active.
        """
        c = self.constants
        if design == "ooo":
            return c.ooo_nominal_power_w
        if design == "inorder":
            return c.a8_power_w
        if design == "widx":
            return (c.ooo_idle_power_w + self.widx_power(widx)
                    + c.l1_active_power_w)
        raise ValueError(f"unknown design {design!r}")

    def energy(self, design: str, runtime_cycles: float, freq_ghz: float = 2.0,
               widx: WidxConfig = WidxConfig()) -> float:
        """Energy in joules for ``runtime_cycles`` at ``freq_ghz``."""
        seconds = runtime_cycles / (freq_ghz * 1e9)
        return self.design_power(design, widx) * seconds
