"""Area, power and energy models (Section 6.3 / Figure 11).

Area and peak power come from the paper's own 40 nm synthesis results;
core powers come from the published estimates the paper cites.  Energy and
energy-delay are computed from these constants and *measured* runtimes from
our simulations, reproducing Figure 11's three bars.
"""

from .power import PowerModel, AreaReport, POWER_CONSTANTS
from .metrics import DesignPoint, EnergyReport, energy_report

__all__ = [
    "PowerModel",
    "AreaReport",
    "POWER_CONSTANTS",
    "DesignPoint",
    "EnergyReport",
    "energy_report",
]
