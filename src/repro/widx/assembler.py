"""A two-pass assembler for Widx programs.

Syntax (one instruction per line; ``;`` starts a comment — ``#`` cannot,
because it marks immediates)::

    .name  walk_kernel        ; program name
    .role  W                  ; H = dispatcher, W = walker, P = producer
    .input r1, r2             ; loaded from the input queue each invocation
    .const r5 = 0xFFFF        ; preloaded from the Widx control block
    .persist r9               ; survives across invocations

    loop:
      ld.4    r3, [r2+0]      ; load (width.4 or .8), address ra+imm
      add     r4, r3, r5      ; three-operand ALU; '#imm' for immediates
      add-shf r7, r6, r6, #3  ; rd = ra + (rb << 3); negative = right shift
      cmp     r4, r3, r1      ; rd = (ra == rb)
      ble     r4, r0, done    ; branch when ra <= rb (unsigned)
      touch   [r2+64]         ; non-binding prefetch
      emit    r5, r7          ; push registers to the output queue
      st.8    [r9+0], r1      ; store (producer only)
      ba      loop
    done:
      halt
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import AssemblerError
from .isa import Instruction, Opcode, Register
from .program import Program, UnitRole

_LABEL_RE = re.compile(r"^([A-Za-z_][\w]*):\s*(.*)$")
_REG_RE = re.compile(r"^r(\d+)$")
_MEM_RE = re.compile(r"^\[(r\d+)\s*([+-]\s*(?:0x[0-9a-fA-F]+|\d+))?\]$")

_THREE_OP_ALU = {
    "add": Opcode.ADD,
    "and": Opcode.AND,
    "xor": Opcode.XOR,
    "cmp": Opcode.CMP,
    "cmp-le": Opcode.CMP_LE,
}
_FUSED = {
    "add-shf": Opcode.ADD_SHF,
    "and-shf": Opcode.AND_SHF,
    "xor-shf": Opcode.XOR_SHF,
}


def _parse_register(token: str, context: str) -> Register:
    match = _REG_RE.match(token)
    if not match:
        raise AssemblerError(f"{context}: expected a register, got {token!r}")
    return Register(int(match.group(1)))


def _parse_immediate(token: str, context: str) -> int:
    token = token.lstrip("#")
    try:
        return int(token.replace(" ", ""), 0)
    except ValueError:
        raise AssemblerError(f"{context}: bad immediate {token!r}") from None


def _parse_memory_operand(token: str, context: str) -> Tuple[Register, int]:
    match = _MEM_RE.match(token.replace(" ", ""))
    if not match:
        raise AssemblerError(f"{context}: expected [rN+imm], got {token!r}")
    base = _parse_register(match.group(1), context)
    offset = int(match.group(2).replace(" ", ""), 0) if match.group(2) else 0
    return base, offset


def _split_operands(rest: str) -> List[str]:
    # Commas separate operands; brackets never contain commas in this ISA.
    return [part.strip() for part in rest.split(",") if part.strip()]


class _Assembler:
    def __init__(self, source: str) -> None:
        self.source = source
        self.name: Optional[str] = None
        self.role: Optional[UnitRole] = None
        self.inputs: List[Register] = []
        self.constants: Dict[int, int] = {}
        self.persistent: List[Register] = []
        self.labels: Dict[str, int] = {}
        self.lines: List[Tuple[int, str]] = []  # (source line no, text)

    def assemble(self) -> Program:
        self._first_pass()
        instructions = [self._encode(line_no, text)
                        for line_no, text in self.lines]
        resolved = []
        for pc, instruction in enumerate(instructions):
            if instruction.is_branch and instruction.label is not None:
                if instruction.label not in self.labels:
                    raise AssemblerError(
                        f"line {self.lines[pc][0]}: unknown label "
                        f"{instruction.label!r}")
                resolved.append(Instruction(
                    opcode=instruction.opcode, ra=instruction.ra,
                    rb=instruction.rb,
                    target=self.labels[instruction.label],
                    label=instruction.label))
            else:
                resolved.append(instruction)
        if self.role is None:
            raise AssemblerError("program is missing a .role directive")
        return Program(
            name=self.name or "anonymous",
            role=self.role,
            instructions=tuple(resolved),
            inputs=tuple(self.inputs),
            constants=dict(self.constants),
            persistent=tuple(self.persistent),
        )

    # ------------------------------------------------------------------

    def _first_pass(self) -> None:
        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            text = raw.split(";", 1)[0].strip()
            if not text:
                continue
            if text.startswith("."):
                self._directive(line_no, text)
                continue
            label_match = _LABEL_RE.match(text)
            if label_match:
                label, remainder = label_match.groups()
                if label in self.labels:
                    raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
                self.labels[label] = len(self.lines)
                text = remainder.strip()
                if not text:
                    continue
            self.lines.append((line_no, text))
        if not self.lines:
            raise AssemblerError("empty program")

    def _directive(self, line_no: int, text: str) -> None:
        context = f"line {line_no}"
        parts = text.split(None, 1)
        directive = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""
        if directive == ".name":
            self.name = rest
        elif directive == ".role":
            self.role = UnitRole(rest.upper())
        elif directive == ".input":
            self.inputs.extend(_parse_register(tok, context)
                               for tok in _split_operands(rest))
        elif directive == ".persist":
            self.persistent.extend(_parse_register(tok, context)
                                   for tok in _split_operands(rest))
        elif directive == ".const":
            if "=" not in rest:
                raise AssemblerError(f"{context}: .const needs 'rN = value'")
            reg_text, value_text = (part.strip() for part in rest.split("=", 1))
            register = _parse_register(reg_text, context)
            self.constants[register.index] = _parse_immediate(value_text, context)
        else:
            raise AssemblerError(f"{context}: unknown directive {directive!r}")

    # ------------------------------------------------------------------

    def _encode(self, line_no: int, text: str) -> Instruction:
        context = f"line {line_no}"
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []

        width = 8
        if "." in mnemonic and mnemonic.split(".", 1)[0] in ("ld", "st"):
            base_mnemonic, width_text = mnemonic.split(".", 1)
            try:
                width = int(width_text)
            except ValueError:
                raise AssemblerError(f"{context}: bad width in {mnemonic!r}") from None
            mnemonic = base_mnemonic

        if mnemonic in _THREE_OP_ALU:
            return self._encode_alu(context, _THREE_OP_ALU[mnemonic], operands)
        if mnemonic in _FUSED:
            return self._encode_fused(context, _FUSED[mnemonic], operands)
        if mnemonic in ("shl", "shr"):
            return self._encode_shift(context, mnemonic, operands)
        if mnemonic == "ld":
            return self._encode_load(context, operands, width)
        if mnemonic == "st":
            return self._encode_store(context, operands, width)
        if mnemonic == "touch":
            return self._encode_touch(context, operands)
        if mnemonic == "ba":
            if len(operands) != 1:
                raise AssemblerError(f"{context}: ba takes one label")
            return Instruction(Opcode.BA, label=operands[0], target=0)
        if mnemonic == "ble":
            if len(operands) != 3:
                raise AssemblerError(f"{context}: ble takes ra, rb, label")
            return Instruction(
                Opcode.BLE,
                ra=_parse_register(operands[0], context),
                rb=_parse_register(operands[1], context),
                label=operands[2], target=0)
        if mnemonic == "emit":
            if not operands:
                raise AssemblerError(f"{context}: emit needs source registers")
            return Instruction(Opcode.EMIT, sources=tuple(
                _parse_register(tok, context) for tok in operands))
        if mnemonic == "halt":
            return Instruction(Opcode.HALT)
        raise AssemblerError(f"{context}: unknown mnemonic {mnemonic!r}")

    def _encode_alu(self, context: str, opcode: Opcode,
                    operands: List[str]) -> Instruction:
        if len(operands) != 3:
            raise AssemblerError(f"{context}: {opcode.value} takes rd, ra, rb/#imm")
        rd = _parse_register(operands[0], context)
        ra = _parse_register(operands[1], context)
        if operands[2].startswith("#"):
            return Instruction(opcode, rd=rd, ra=ra,
                               imm=_parse_immediate(operands[2], context))
        return Instruction(opcode, rd=rd, ra=ra,
                           rb=_parse_register(operands[2], context))

    def _encode_fused(self, context: str, opcode: Opcode,
                      operands: List[str]) -> Instruction:
        if len(operands) != 4:
            raise AssemblerError(
                f"{context}: {opcode.value} takes rd, ra, rb, #shift")
        return Instruction(
            opcode,
            rd=_parse_register(operands[0], context),
            ra=_parse_register(operands[1], context),
            rb=_parse_register(operands[2], context),
            imm=_parse_immediate(operands[3], context))

    def _encode_shift(self, context: str, mnemonic: str,
                      operands: List[str]) -> Instruction:
        if len(operands) != 3:
            raise AssemblerError(f"{context}: {mnemonic} takes rd, ra, #imm")
        return Instruction(
            Opcode.SHL if mnemonic == "shl" else Opcode.SHR,
            rd=_parse_register(operands[0], context),
            ra=_parse_register(operands[1], context),
            imm=_parse_immediate(operands[2], context))

    def _encode_load(self, context: str, operands: List[str],
                     width: int) -> Instruction:
        if len(operands) != 2:
            raise AssemblerError(f"{context}: ld takes rd, [ra+imm]")
        base, offset = _parse_memory_operand(operands[1], context)
        return Instruction(Opcode.LD, rd=_parse_register(operands[0], context),
                           ra=base, imm=offset, width=width)

    def _encode_store(self, context: str, operands: List[str],
                      width: int) -> Instruction:
        if len(operands) != 2:
            raise AssemblerError(f"{context}: st takes [ra+imm], rb")
        base, offset = _parse_memory_operand(operands[0], context)
        return Instruction(Opcode.ST, ra=base, imm=offset,
                           rb=_parse_register(operands[1], context), width=width)

    def _encode_touch(self, context: str, operands: List[str]) -> Instruction:
        if len(operands) != 1:
            raise AssemblerError(f"{context}: touch takes [ra+imm]")
        base, offset = _parse_memory_operand(operands[0], context)
        return Instruction(Opcode.TOUCH, ra=base, imm=offset)


def assemble(source: str) -> Program:
    """Assemble Widx assembly text into a validated :class:`Program`."""
    return _Assembler(source).assemble()
