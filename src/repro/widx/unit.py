"""The Widx unit: a 2-stage RISC core executing one program.

Timing model (Section 4.1 / Figure 7):

* one instruction per cycle through the 2-stage pipeline; branches resolve
  in the first stage (the paper notes branch address calculation is the
  design's critical path precisely because it sits in that stage), so even
  taken branches sustain one instruction per cycle;
* ``LD`` blocks the unit until the shared memory hierarchy returns the
  data (walkers get their MLP from *multiple units*, not from within one);
* ``TOUCH`` issues a non-binding prefetch and does not wait;
* ``ST`` drains through a store buffer (1 cycle; latency hidden — the
  paper notes store latency is off the critical path);
* ``EMIT`` blocks while the output queue is full.

Every cycle is attributed to one of the Figure 8a categories: **Comp**
(instruction execution), **Mem** (memory-hierarchy stall), **TLB**
(address-translation stall, serviced by the host MMU), **Idle** (waiting
for work from the dispatcher) — plus **Queue** for output back-pressure,
which the paper folds into Idle; we keep it separate and report both.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..errors import WidxFault
from ..mem.hierarchy import MemoryHierarchy
from ..mem.physmem import PhysicalMemory
from ..obs import Breakdown, Counter
from ..sim.engine import Engine
from ..sim.resources import BoundedQueue, QUEUE_CLOSED
from .decode import (K_ADD, K_ADD_SHF, K_AND, K_AND_SHF, K_ALU_FIRST, K_BA,
                     K_BLE, K_CMP, K_CMP_LE, K_EMIT, K_HALT, K_LD, K_SHL,
                     K_SHR, K_ST, K_TOUCH, K_XOR, decoded_program)
from .isa import Instruction, NUM_REGISTERS, Opcode
from .program import Program

_M64 = (1 << 64) - 1


class UnitCycleBreakdown(Breakdown):
    """Cycle attribution for one unit (the Figure 8a categories).

    Backed by ``__slots__`` attributes rather than the base class's dict so
    the interpreter hot loop accumulates with plain attribute adds
    (``cycles.comp += pending``); all derived operations (``total``,
    ``merged``, ``scaled``, serialization) come from :class:`Breakdown`.
    """

    CATEGORIES = ("comp", "mem", "tlb", "idle", "queue")

    __slots__ = CATEGORIES

    def __init__(self, comp: float = 0.0, mem: float = 0.0, tlb: float = 0.0,
                 idle: float = 0.0, queue: float = 0.0) -> None:
        self.comp = comp
        self.mem = mem
        self.tlb = tlb
        self.idle = idle
        self.queue = queue

    def get(self, category: str) -> float:
        """The value of one category (slot attribute lookup)."""
        return getattr(self, category)

    def _set(self, category: str, value: float) -> None:
        if category not in self.CATEGORIES:
            raise WidxFault(f"UnitCycleBreakdown has no category {category!r}")
        setattr(self, category, value)


class UnitStats:
    """Execution counters for one unit."""

    __slots__ = ("invocations", "instructions", "loads", "stores",
                 "touches", "emitted", "cycles")

    _COUNTERS = ("invocations", "instructions", "loads", "stores",
                 "touches", "emitted")

    def __init__(self, invocations: int = 0, instructions: int = 0,
                 loads: int = 0, stores: int = 0, touches: int = 0,
                 emitted: int = 0,
                 cycles: Optional[UnitCycleBreakdown] = None) -> None:
        self.invocations = Counter(invocations)
        self.instructions = Counter(instructions)
        self.loads = Counter(loads)
        self.stores = Counter(stores)
        self.touches = Counter(touches)
        self.emitted = Counter(emitted)
        self.cycles = cycles if cycles is not None else UnitCycleBreakdown()

    def to_dict(self) -> Dict[str, Any]:
        """The JSON payload shape the measurement cache persists."""
        data: Dict[str, Any] = {name: getattr(self, name).value
                                for name in self._COUNTERS}
        data["cycles"] = self.cycles.as_values()
        return data

    def register_into(self, registry, prefix: str) -> None:
        """Publish the counters and the cycle breakdown under ``prefix``."""
        for name in self._COUNTERS:
            registry.register(f"{prefix}.{name}", getattr(self, name))
        registry.register(f"{prefix}.cycles", self.cycles)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, UnitStats):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={getattr(self, name).value}"
                          for name in self._COUNTERS)
        return f"UnitStats({inner}, cycles={self.cycles!r})"


class WidxUnit:
    """One dispatcher, walker or producer instance."""

    def __init__(self, name: str, program: Program, engine: Engine,
                 hierarchy: MemoryHierarchy, physmem: PhysicalMemory,
                 in_queue: Optional[BoundedQueue] = None,
                 out_queue: Optional[BoundedQueue] = None) -> None:
        self.name = name
        self.program = program
        self.engine = engine
        self.hierarchy = hierarchy
        self.physmem = physmem
        self.in_queue = in_queue
        self.out_queue = out_queue
        self.regs: List[int] = [0] * NUM_REGISTERS
        for index, value in program.constants.items():
            self.regs[index] = value & _M64
        self._decoded = decoded_program(program)
        self._input_indexes = tuple(r.index for r in program.inputs)
        self.stats = UnitStats()
        self.tracer = None            # set via set_tracer for --trace runs
        self.trail = None             # set via set_trail for --trails runs
        self.track = f"widx.{name}"
        self._start_time: Optional[float] = None
        self._end_time: Optional[float] = None
        # Fault-salvage bookkeeping: the queue item currently being
        # processed, and how many EMITs this invocation has issued.  A
        # fail-stopped walker's item is safe to requeue for a surviving
        # walker only while invocation_emits == 0 (nothing externally
        # visible happened yet); see WidxMachine._apply_fault.
        self.current_item: Optional[Tuple[int, ...]] = None
        self.invocation_emits = 0

    def set_tracer(self, tracer) -> None:
        """Record an "invoke" span per invocation onto ``tracer``."""
        self.tracer = tracer

    def set_trail(self, recorder) -> None:
        """Record per-invocation traversal trails (every ``LD`` hop's
        address and servicing cache level) onto ``recorder``, a
        :class:`~repro.widx.trail.TrailRecorder`."""
        self.trail = recorder

    def configure(self, values: dict) -> None:
        """Write configuration registers (the memory-mapped config path)."""
        for index, value in values.items():
            if not 1 <= index < NUM_REGISTERS:
                raise WidxFault(f"{self.name}: cannot configure r{index}")
            self.regs[index] = value & _M64

    # ------------------------------------------------------------------

    @property
    def busy_cycles(self) -> float:
        if self._start_time is None or self._end_time is None:
            return 0.0
        return self._end_time - self._start_time

    def run(self) -> Generator:
        """The unit's process: generator for the discrete-event engine.

        The generator lives for the unit's whole lifetime, so locals bound
        here amortize over every invocation of the dispatch loop.
        """
        engine = self.engine
        self._start_time = engine.now
        tracer = self.tracer
        stats = self.stats
        try:
            if self.in_queue is None:
                # Autonomous unit (dispatcher / coupled walker): a single
                # invocation whose program iterates over its work itself.
                stats.invocations.value += 1
                if tracer is not None:
                    tracer.begin(self.track, "invoke", engine.now)
                yield from self._invoke()
                if tracer is not None:
                    tracer.end(self.track, "invoke", engine.now)
            else:
                in_queue = self.in_queue
                cycles = stats.cycles
                invocations = stats.invocations
                load_inputs = self._load_inputs
                invoke = self._invoke
                trail = self.trail
                name = self.name
                while True:
                    waited_from = engine.now
                    item = yield in_queue.get()
                    cycles.idle += engine.now - waited_from
                    if item is QUEUE_CLOSED:
                        break
                    self.current_item = item
                    self.invocation_emits = 0
                    load_inputs(item)
                    invocations.value += 1
                    if tracer is not None:
                        tracer.begin(self.track, "invoke", engine.now)
                    if trail is not None:
                        trail.start(name, item, engine.now)
                    yield from invoke()
                    if trail is not None:
                        trail.commit(name, engine.now)
                    if tracer is not None:
                        tracer.end(self.track, "invoke", engine.now)
                    self.current_item = None
        finally:
            self._end_time = self.engine.now

    def _load_inputs(self, item: Tuple[int, ...]) -> None:
        indexes = self._input_indexes
        if len(item) != len(indexes):
            raise WidxFault(
                f"{self.name}: got {len(item)} queue operands, program "
                f"expects {len(indexes)}")
        regs = self.regs
        for register, value in zip(indexes, item):
            regs[register] = value & _M64
        regs[0] = 0

    # ------------------------------------------------------------------

    def _invoke(self) -> Generator:
        # Interpreter hot loop over the memoized decoded program (see
        # repro.widx.decode): int-kind dispatch, pre-resolved operands,
        # direct slot-attribute cycle accounting.  Instruction counts
        # accumulate in a local and flush to the counter before every
        # suspension point and on exit, so externally observable counts at
        # every yield and on exception propagation match a per-instruction
        # increment exactly.
        regs = self.regs
        ops = self._decoded
        stats = self.stats
        cycles = stats.cycles
        engine = self.engine
        hierarchy = self.hierarchy
        physmem = self.physmem
        instructions = stats.instructions
        trail = self.trail
        unit_name = self.name
        pc = 0
        pending = 1.0  # one cycle to dequeue/start the invocation
        program_len = len(ops)
        executed = 0

        try:
            while pc < program_len:
                kind, rd, ra, rb, imm, bconst, width, target, sources = \
                    ops[pc]
                executed += 1

                if kind == K_LD:
                    instructions.value += executed
                    executed = 0
                    if pending:
                        yield pending
                        cycles.comp += pending
                        pending = 0.0
                    addr = (regs[ra] + imm) & _M64
                    now = engine.now
                    result = hierarchy.load(addr, now)
                    if trail is not None:
                        trail.hop(unit_name, addr, result.level, now)
                    value = physmem.read(addr, width)
                    wait = result.complete - now
                    cycles.comp += 1.0
                    stall = max(0.0, wait - 1.0)
                    tlb_part = min(result.tlb_stall, stall)
                    cycles.tlb += tlb_part
                    cycles.mem += stall - tlb_part
                    if wait > 0:
                        yield wait
                    if rd != 0:
                        regs[rd] = value
                    stats.loads.value += 1
                    pc += 1

                elif kind >= K_ALU_FIRST:
                    a = regs[ra]
                    b = regs[rb] if rb >= 0 else bconst
                    if kind == K_ADD:
                        value = (a + b) & _M64
                    elif kind == K_AND:
                        value = a & b
                    elif kind == K_XOR:
                        value = a ^ b
                    elif kind == K_CMP:
                        value = 1 if a == b else 0
                    elif kind == K_CMP_LE:
                        value = 1 if a <= b else 0
                    elif kind == K_SHL:
                        value = (a << imm) & _M64
                    elif kind == K_SHR:
                        value = a >> imm
                    else:  # fused shift ops
                        shifted = ((b << imm) & _M64 if imm >= 0
                                   else b >> -imm)
                        if kind == K_ADD_SHF:
                            value = (a + shifted) & _M64
                        elif kind == K_AND_SHF:
                            value = a & shifted
                        else:
                            value = a ^ shifted
                    if rd != 0:
                        regs[rd] = value
                    pending += 1.0
                    pc += 1

                elif kind == K_BLE:
                    pending += 1.0
                    if regs[ra] <= regs[rb]:
                        pc = target
                    else:
                        pc += 1

                elif kind == K_BA:
                    # Branch address calculation happens in the first
                    # pipeline stage (the design's critical path — Section
                    # 4.1), so taken branches do not bubble.
                    pending += 1.0
                    pc = target

                elif kind == K_EMIT:
                    out_queue = self.out_queue
                    if out_queue is None:
                        raise WidxFault(
                            f"{self.name}: EMIT with no output queue")
                    instructions.value += executed
                    executed = 0
                    if pending:
                        yield pending
                        cycles.comp += pending
                        pending = 0.0
                    values = tuple(regs[i] for i in sources)
                    waited_from = engine.now
                    # Count the emit before the put suspends: once put()
                    # runs, the value is committed to the queue (a parked
                    # put still delivers), so a fault landing during the
                    # wait must not treat this invocation as salvageable.
                    self.invocation_emits += 1
                    yield out_queue.put(values)
                    cycles.queue += engine.now - waited_from
                    pending = 1.0
                    stats.emitted.value += 1
                    pc += 1

                elif kind == K_TOUCH:
                    addr = (regs[ra] + imm) & _M64
                    hierarchy.touch(addr, engine.now + pending)
                    stats.touches.value += 1
                    pending += 1.0
                    pc += 1

                elif kind == K_ST:
                    addr = (regs[ra] + imm) & _M64
                    physmem.write(addr, width, regs[rb])
                    hierarchy.store(addr, engine.now + pending)
                    stats.stores.value += 1
                    pending += 1.0
                    pc += 1

                else:  # K_HALT: fall-through return; next dequeue pays
                    break

            if pending:
                instructions.value += executed
                executed = 0
                yield pending
                cycles.comp += pending
        finally:
            if executed:
                instructions.value += executed

    # ------------------------------------------------------------------

    @staticmethod
    def _alu(ins: Instruction, regs: List[int]) -> None:
        a = regs[ins.ra.index]
        if ins.rb is not None:
            b = regs[ins.rb.index]
        elif ins.imm is not None:
            b = ins.imm & _M64
        else:
            b = 0
        op = ins.opcode
        if op is Opcode.ADD:
            value = (a + b) & _M64
        elif op is Opcode.AND:
            value = a & b
        elif op is Opcode.XOR:
            value = a ^ b
        elif op is Opcode.CMP:
            value = 1 if a == b else 0
        elif op is Opcode.CMP_LE:
            value = 1 if a <= b else 0
        elif op is Opcode.SHL:
            value = (a << ins.imm) & _M64
        elif op is Opcode.SHR:
            value = a >> ins.imm
        elif op in (Opcode.ADD_SHF, Opcode.AND_SHF, Opcode.XOR_SHF):
            shift = ins.imm
            shifted = (b << shift) & _M64 if shift >= 0 else b >> -shift
            if op is Opcode.ADD_SHF:
                value = (a + shifted) & _M64
            elif op is Opcode.AND_SHF:
                value = a & shifted
            else:
                value = a ^ shifted
        else:  # pragma: no cover - dispatch covers every opcode
            raise WidxFault(f"unhandled opcode {op}")
        if ins.rd.index != 0:
            regs[ins.rd.index] = value
