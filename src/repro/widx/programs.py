"""Widx program generation for a given schema and hash function.

This is the software half of the paper's programming API (Section 4.2): a
DBMS developer supplies three functions — key hashing, node walk, result
emission — written against a concrete data layout.  Here those functions
are *generated* from the same :class:`~repro.db.node.NodeLayout` and
:class:`~repro.db.hashfn.HashSpec` objects the database engine itself uses,
then assembled into Table 1 instructions.

Register conventions (configuration registers are written by the host core
through Widx's memory-mapped configuration interface before execution;
static constants come from the Widx control block):

Dispatcher (H):
    r1  key-table cursor (config)        r5  current key
    r2  remaining key count (config)     r6  hash scratch
    r3  bucket-array base (config)       r7  bucket address
    r4  bucket-index mask (config)       r20+ hash constants (static)

Walker (W):
    r1  probe key (input)                r3-r6 scratch
    r2  current node address (input)
    r8  base-column address (config; indirect layouts)
    r12 empty-header sentinel (static)   r13 constant 1 (static)

Producer (P):
    r1  payload (input)                  r9  output cursor (config)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..db.hashfn import HashSpec, HashStep
from ..db.node import NodeLayout
from ..errors import AssemblerError
from .assembler import assemble
from .program import Program

#: Configuration-register indices (the "memory-mapped registers inside
#: Widx" of Section 4.3), by unit role.
DISPATCHER_CONFIG = {"key_cursor": 1, "key_count": 2,
                     "bucket_base": 3, "bucket_mask": 4}
WALKER_CONFIG = {"column_base": 8}
PRODUCER_CONFIG = {"out_cursor": 9}

_HASH_CONST_BASE = 20  # first register used for hash constants


@dataclass
class GeneratedProgram:
    """An assembled program plus its configuration-register map."""

    program: Program
    config_registers: Dict[str, int] = field(default_factory=dict)
    source: str = ""


def _hash_body(steps: Tuple[HashStep, ...], src: str, work: str) -> Tuple[List[str], Dict[int, int]]:
    """Emit hash mixing code; returns (lines, constant registers)."""
    lines: List[str] = []
    constants: Dict[int, int] = {}
    const_reg = _HASH_CONST_BASE
    current = src
    for step in steps:
        if step.kind in ("xor_shl", "xor_shr", "add_shl", "sub_shl"):
            op = "xor-shf" if step.kind.startswith("xor") else "add-shf"
            amount = step.amount if step.kind.endswith("shl") else -step.amount
            if step.kind == "sub_shl":
                raise AssemblerError(
                    "sub_shl cannot be compiled: the Widx ISA has no SUB")
            lines.append(f"  {op} {work}, {current}, {current}, #{amount}")
        elif step.kind in ("and_const", "xor_const", "add_const"):
            if const_reg > 31:
                raise AssemblerError("out of hash-constant registers")
            mnemonic = step.kind.split("_", 1)[0]
            constants[const_reg] = step.const
            lines.append(f"  {mnemonic} {work}, {current}, r{const_reg}")
            const_reg += 1
        elif step.kind == "shr":
            lines.append(f"  shr {work}, {current}, #{step.amount}")
        elif step.kind == "shl":
            lines.append(f"  shl {work}, {current}, #{step.amount}")
        else:  # pragma: no cover - HashStep validates kinds
            raise AssemblerError(f"unknown hash step {step.kind!r}")
        current = work
    return lines, constants


def dispatcher_program(hash_spec: HashSpec, layout: NodeLayout, *,
                       stride_keys: int = 1, touch_ahead: bool = True,
                       name: str = "dispatch") -> GeneratedProgram:
    """The key-hashing function: stream keys, hash, emit (key, bucket addr).

    ``stride_keys`` > 1 builds the per-walker private dispatcher of
    Figure 3c, where dispatcher *i* handles keys *i, i+N, i+2N, ...*.
    """
    key_bytes = layout.key_bytes
    step_bytes = stride_keys * key_bytes
    hash_lines, constants = _hash_body(hash_spec.steps, "r5", "r6")
    lines = [
        f".name {name}",
        ".role H",
    ]
    lines += [f".const r{reg} = {value:#x}" for reg, value in constants.items()]
    lines += [
        "loop:",
        "  ble r2, r0, done",     # while (count != 0) — guard before load
        f"  ld.{key_bytes} r5, [r1+0]",
    ]
    if touch_ahead:
        # Prefetch one block ahead of the key stream (Section 4.1's TOUCH).
        lines.append("  touch [r1+64]")
    lines += hash_lines
    lines += [
        "  and r6, r6, r4",
        f"  add-shf r7, r3, r6, #{layout.shift}",
        "  emit r5, r7",
        f"  add r1, r1, #{step_bytes}",
        "  add r2, r2, #-1",
        "  ba loop",
        "done:",
        "  halt",
    ]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), dict(DISPATCHER_CONFIG), source)


def _walk_lines(layout: NodeLayout, key_reg: str, node_reg: str,
                emit_to: str = "producer") -> List[str]:
    """The node-walk inner loop, shared by decoupled and coupled walkers."""
    lines: List[str] = []
    if layout.indirect:
        lines += [
            "walk:",
            f"  ld.8 r3, [{node_reg}+{layout.key_offset}]",
            "  cmp r4, r3, r12",          # row-id slot == empty sentinel?
            "  ble r13, r4, next",        # 1 <= r4 -> empty header, skip
            f"  add-shf r5, r8, r3, #{layout.key_bytes.bit_length() - 1}",
            f"  ld.{layout.key_bytes} r6, [r5+0]",
            f"  cmp r4, r6, {key_reg}",
            "  ble r4, r0, next",
            "  emit r3",                  # payload is the row id
            "next:",
            f"  ld.8 {node_reg}, [{node_reg}+{layout.next_offset}]",
            f"  ble {node_reg}, r0, done",
            "  ba walk",
        ]
    else:
        lines += [
            "walk:",
            f"  ld.{layout.key_bytes} r3, [{node_reg}+{layout.key_offset}]",
            f"  cmp r4, r3, {key_reg}",
            "  ble r4, r0, next",
            f"  ld.{layout.payload_bytes} r5, [{node_reg}+{layout.payload_offset}]",
            "  emit r5",
            "next:",
            f"  ld.8 {node_reg}, [{node_reg}+{layout.next_offset}]",
            f"  ble {node_reg}, r0, done",
            "  ba walk",
        ]
    return lines


def walker_program(layout: NodeLayout, name: str = "walk") -> GeneratedProgram:
    """The node-walk function: pop (key, bucket addr), chase the chain,
    emit matching payloads to the producer."""
    lines = [
        f".name {name}",
        ".role W",
        ".input r1, r2",
    ]
    config = {}
    if layout.indirect:
        lines.append(f".const r12 = {layout.empty_sentinel:#x}")
        lines.append(".const r13 = 1")
        config.update(WALKER_CONFIG)
    lines += _walk_lines(layout, "r1", "r2")
    lines += ["done:", "  halt"]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), config, source)


def producer_program(payload_bytes: int = 8,
                     name: str = "produce") -> GeneratedProgram:
    """The result-emission function: store each payload, bump the cursor.

    Only the producer may execute ST (Table 1) — the paper's programming
    model forbids writes from every other unit.
    """
    lines = [
        f".name {name}",
        ".role P",
        ".input r1",
        ".persist r9",
        f"  st.{payload_bytes} [r9+0], r1",
        f"  add r9, r9, #{payload_bytes}",
        "  halt",
    ]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), dict(PRODUCER_CONFIG), source)


def coupled_walker_program(hash_spec: HashSpec, layout: NodeLayout, *,
                           stride_keys: int = 1,
                           name: str = "probe") -> GeneratedProgram:
    """Figure 3a/3b: a walker that hashes its own keys inline.

    The whole of Listing 1 runs on one unit: load key, hash, walk, repeat.
    With ``stride_keys`` = N, walker *i* of N processes keys *i, i+N, ...*
    (the multi-walker baseline of Figure 3b).
    """
    key_bytes = layout.key_bytes
    step_bytes = stride_keys * key_bytes
    # Register plan: the walk body scratches r3-r6 (and r8/r12/r13 for
    # indirect layouts), so this program keeps its own state clear of it:
    # r1 cursor, r14 count, r16 hash scratch, r17 raw key, r18 bucket base,
    # r19 bucket mask, r2 current node pointer.
    hash_lines, constants = _hash_body(hash_spec.steps, "r16", "r16")
    lines = [
        f".name {name}",
        ".role W",
    ]
    lines += [f".const r{reg} = {value:#x}" for reg, value in constants.items()]
    if layout.indirect:
        lines.append(f".const r12 = {layout.empty_sentinel:#x}")
        lines.append(".const r13 = 1")
    lines += [
        "loop:",
        "  ble r14, r0, done",            # while (count != 0)
        f"  ld.{key_bytes} r16, [r1+0]",
        f"  add r17, r16, r0",            # keep the raw key for compares
    ]
    lines += hash_lines
    lines += [
        "  and r16, r16, r19",
        f"  add-shf r2, r18, r16, #{layout.shift}",
    ]
    walk = _walk_lines(layout, "r17", "r2")
    # Retarget the walk's exit label to this program's loop epilogue.
    walk = [line.replace("ble r2, r0, done", "ble r2, r0, cont") for line in walk]
    lines += walk
    lines += [
        "cont:",
        f"  add r1, r1, #{step_bytes}",
        "  add r14, r14, #-1",
        "  ba loop",
        "done:",
        "  halt",
    ]
    source = "\n".join(lines)
    config = {"key_cursor": 1, "key_count": 14, "bucket_base": 18,
              "bucket_mask": 19}
    if layout.indirect:
        config.update(WALKER_CONFIG)
    return GeneratedProgram(assemble(source), config, source)


# ----------------------------------------------------------------------
# B+-tree traversal (the paper's Section 7 extension: "Widx can easily be
# extended to accelerate other index structures, such as balanced trees")
# ----------------------------------------------------------------------

#: Configuration registers for the tree dispatcher (no hashing — trees
#: need only the key stream and the root pointer).
TREE_DISPATCHER_CONFIG = {"key_cursor": 1, "key_count": 2, "root": 3}


def tree_dispatcher_program(key_bytes: int = 4, *, stride_keys: int = 1,
                            touch_ahead: bool = True,
                            name: str = "tree-dispatch") -> GeneratedProgram:
    """Stream probe keys and emit (key, root) pairs to the tree walkers.

    Trees have no hashing stage, but decoupling still pays: the dispatcher
    prefetches the key stream and keeps every walker's input queue full.
    """
    step_bytes = stride_keys * key_bytes
    lines = [
        f".name {name}",
        ".role H",
        "loop:",
        "  ble r2, r0, done",
        f"  ld.{key_bytes} r5, [r1+0]",
    ]
    if touch_ahead:
        lines.append("  touch [r1+64]")
    lines += [
        "  emit r5, r3",
        f"  add r1, r1, #{step_bytes}",
        "  add r2, r2, #-1",
        "  ba loop",
        "done:",
        "  halt",
    ]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), dict(TREE_DISPATCHER_CONFIG),
                            source)


def _tree_descent_lines(key_reg: str = "r1") -> List[str]:
    """Descend from the node in r2 to the leaf covering ``key_reg``.

    Falls through to the ``leaf:`` label with r2 = leaf address.  The
    separator slots of partially filled nodes are padded with 2^32-1, so
    ``key <= separator`` always resolves inside the real children — no
    bounds logic needed.
    """
    lines = [
        "walk:",
        "  ld.8 r3, [r2+0]",          # meta word
        "  and r4, r3, r13",
        "  ble r13, r4, leaf",        # leaf bit set -> stop descending
    ]
    # Internal node: sequential separator compares (fanout 4, unrolled).
    for slot in range(4):
        lines += [
            f"  ld.4 r5, [r2+{8 + 4 * slot}]",
            f"  cmp-le r6, {key_reg}, r5",
            f"  ble r13, r6, child{slot}",
        ]
    lines += [
        "  ld.8 r2, [r2+56]",         # children[4]: key > every separator
        "  ba walk",
    ]
    for slot in range(4):
        lines += [
            f"child{slot}:",
            f"  ld.8 r2, [r2+{24 + 8 * slot}]",
            "  ba walk",
        ]
    lines.append("leaf:")
    return lines


def tree_walker_program(name: str = "tree-walk") -> GeneratedProgram:
    """Descend a B+-tree (64 B nodes, fanout 4) and emit the payload.

    Register plan: r1 = probe key (input), r2 = current node (input: the
    root), r3-r7 scratch, r13 = constant 1.
    """
    lines = [
        f".name {name}",
        ".role W",
        ".input r1, r2",
        ".const r13 = 1",
    ]
    lines += _tree_descent_lines("r1")
    for slot in range(4):
        skip = f"miss{slot}"
        lines += [
            f"  ld.4 r5, [r2+{8 + 4 * slot}]",
            "  cmp r6, r5, r1",
            f"  ble r6, r0, {skip}",
            f"  ld.4 r7, [r2+{24 + 4 * slot}]",
            "  emit r7",
            "  ba done",
            f"{skip}:",
        ]
    lines += ["  ba done", "done:", "  halt"]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), {}, source)


#: Configuration registers for the multi-range dispatcher.
RANGE_DISPATCHER_CONFIG = {"range_cursor": 1, "range_count": 2, "root": 3}


def range_dispatcher_program(*, stride_ranges: int = 1,
                             name: str = "range-dispatch"
                             ) -> GeneratedProgram:
    """Stream (low, high) range pairs and emit (low, root, high).

    Ranges are packed as two consecutive 4-byte words; walkers pick up
    whole ranges, giving inter-range parallelism (multi-range predicates,
    IN-lists) the way point probes give inter-key parallelism.
    """
    step_bytes = 8 * stride_ranges
    lines = [
        f".name {name}",
        ".role H",
        "loop:",
        "  ble r2, r0, done",
        "  ld.4 r5, [r1+0]",      # low
        "  ld.4 r6, [r1+4]",      # high (same block)
        "  touch [r1+64]",
        "  emit r5, r3, r6",
        f"  add r1, r1, #{step_bytes}",
        "  add r2, r2, #-1",
        "  ba loop",
        "done:",
        "  halt",
    ]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), dict(RANGE_DISPATCHER_CONFIG),
                            source)


def tree_range_walker_program(name: str = "tree-range") -> GeneratedProgram:
    """Scan a B+-tree range: descend to the leaf covering ``low``, then
    walk the leaf chain emitting every payload with low <= key <= high.

    Register plan: r1 = low (input), r2 = node (input: root), r10 = high
    (input), r3-r7 scratch, r13 = constant 1.  Key-pad slots (2^32-1)
    compare greater than any real ``high``, terminating the scan at the
    last partially filled leaf.
    """
    lines = [
        f".name {name}",
        ".role W",
        ".input r1, r2, r10",
        ".const r13 = 1",
    ]
    lines += _tree_descent_lines("r1")
    for slot in range(4):
        lines += [
            f"  ld.4 r5, [r2+{8 + 4 * slot}]",
            "  cmp-le r6, r5, r10",          # key <= high?
            "  ble r6, r0, done",            # key > high (or pad): finished
            f"  cmp-le r7, r1, r5",          # low <= key?
            f"  ble r7, r0, skip{slot}",
            f"  ld.4 r8, [r2+{24 + 4 * slot}]",
            "  emit r8",
            f"skip{slot}:",
        ]
    lines += [
        "  ld.8 r2, [r2+40]",                # next-leaf pointer
        "  ble r2, r0, done",
        "  ba leaf",
        "done:",
        "  halt",
    ]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), {}, source)


# ----------------------------------------------------------------------
# Ordered-index zoo (the ROADMAP's counterpoint structures): an
# MLP-friendly hashed trie, a Wormhole-style hash-accelerated ordered
# lookup, and a level-wise batched B+-tree descent.
# ----------------------------------------------------------------------

#: Configuration registers for key-only dispatchers (trie walkers carry
#: the whole probe state in the key itself).
KEY_DISPATCHER_CONFIG = {"key_cursor": 1, "key_count": 2}

#: Configuration registers for trie walkers (one bucket table for all
#: depths, so two registers cover the whole layout).
TRIE_WALKER_CONFIG = {"bucket_base": 14, "bucket_mask": 15}

#: Configuration registers for wormhole walkers (the MetaTrieHash).
WORMHOLE_WALKER_CONFIG = {"meta_base": 14, "meta_mask": 15}

#: Configuration registers for the autonomous batched tree walker.
BATCHED_TREE_CONFIG = {"key_cursor": 1, "batch_count": 14, "root": 15}

#: Configuration registers for the trie range dispatcher (16-byte
#: records: start-terminal address, high bound).
TRIE_RANGE_DISPATCHER_CONFIG = {"range_cursor": 1, "range_count": 2}


def key_dispatcher_program(key_bytes: int = 4, *, stride_keys: int = 1,
                           touch_ahead: bool = True,
                           name: str = "key-dispatch") -> GeneratedProgram:
    """Stream probe keys and emit each bare key to the walkers.

    The trie walker computes every candidate bucket address from the key
    alone, so unlike the hash/tree dispatchers there is nothing else to
    forward.
    """
    step_bytes = stride_keys * key_bytes
    lines = [
        f".name {name}",
        ".role H",
        "loop:",
        "  ble r2, r0, done",
        f"  ld.{key_bytes} r5, [r1+0]",
    ]
    if touch_ahead:
        lines.append("  touch [r1+64]")
    lines += [
        "  emit r5",
        f"  add r1, r1, #{step_bytes}",
        "  add r2, r2, #-1",
        "  ba loop",
        "done:",
        "  halt",
    ]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), dict(KEY_DISPATCHER_CONFIG),
                            source)


def _require_fused_hash(hash_spec: HashSpec, role: str) -> None:
    """Walker-resident hashing allows only shift/fused steps: constant
    steps would collide with the registers these programs use, and
    AND-SHF is dispatcher-only in Table 1."""
    for step in hash_spec.steps:
        if step.kind.endswith("_const"):
            raise AssemblerError(
                f"{role} programs compile only shift/fused hash steps; "
                f"{hash_spec.name!r} uses {step.kind!r}")


def trie_walker_program(hash_spec: HashSpec, *, prefetch: bool = True,
                        name: str = "trie-walk") -> GeneratedProgram:
    """Probe the hashed trie depth by depth, first tag match wins.

    With ``prefetch`` (the Cuckoo-Trie signature move) the walker first
    computes all eight candidate bucket addresses — each derivable from
    the key alone — and TOUCHes them, so by the time the depth-order scan
    issues its blocking loads the lines are already in flight; without it
    the program degenerates to a serial probe sequence.

    Register plan: r1 = probe key (input), r3-r9 scratch, r13 = constant
    1, r14 = bucket base (config), r15 = bucket mask (config), r16-r23 =
    per-depth bucket addresses.
    """
    _require_fused_hash(hash_spec, "trie walker")
    lines = [
        f".name {name}",
        ".role W",
        ".input r1",
        ".const r13 = 1",
    ]
    depths = range(1, 9)

    def addr_lines(depth: int, dest: str) -> List[str]:
        body, _constants = _hash_body(hash_spec.steps, "r5", "r5")
        return ([f"  shr r5, r1, #{32 - 4 * depth}",
                 f"  add-shf r5, r5, r13, #{32 + depth}"]
                + body
                + ["  and r5, r5, r15",
                   f"  add-shf {dest}, r14, r5, #6"])

    if prefetch:
        for depth in depths:
            lines += addr_lines(depth, f"r{15 + depth}")
            lines.append(f"  touch [r{15 + depth}+0]")
    for depth in depths:
        after = f"level{depth + 1}" if depth < 8 else "done"
        lines.append(f"level{depth}:")
        if prefetch:
            lines.append(f"  add r7, r{15 + depth}, r0")
        else:
            lines += addr_lines(depth, "r7")
        lines += [
            f"  add-shf r4, r1, r13, #{32 + depth}",   # expect tag
            f"chain{depth}:",
            "  ld.8 r3, [r7+16]",
            "  cmp r6, r3, r4",
            f"  ble r13, r6, hit{depth}a",
            "  ld.8 r3, [r7+40]",
            "  cmp r6, r3, r4",
            f"  ble r13, r6, hit{depth}b",
            "  ld.8 r7, [r7+0]",
            f"  ble r7, r0, {after}",
            f"  ba chain{depth}",
            f"hit{depth}a:",
            "  ld.4 r9, [r7+24]",
            "  emit r9",
            "  ba done",
            f"hit{depth}b:",
            "  ld.4 r9, [r7+48]",
            "  emit r9",
            "  ba done",
        ]
    lines += ["done:", "  halt"]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), dict(TRIE_WALKER_CONFIG),
                            source)


def trie_range_dispatcher_program(*, name: str = "trie-range-dispatch"
                                  ) -> GeneratedProgram:
    """Stream (start-terminal address, high) records to the range walkers.

    Records are 16 bytes — the start address is a full pointer into the
    terminal chain (located host-side on the sorted key list, the same
    planning step a database performs on any secondary structure).
    """
    lines = [
        f".name {name}",
        ".role H",
        "loop:",
        "  ble r2, r0, done",
        "  ld.8 r5, [r1+0]",       # start terminal-slot address
        "  ld.8 r6, [r1+8]",       # high bound
        "  touch [r1+64]",
        "  emit r5, r6",
        "  add r1, r1, #16",
        "  add r2, r2, #-1",
        "  ba loop",
        "done:",
        "  halt",
    ]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source),
                            dict(TRIE_RANGE_DISPATCHER_CONFIG), source)


def trie_range_walker_program(name: str = "trie-range") -> GeneratedProgram:
    """Stream the trie's sorted terminal chain from a start slot while
    the stored key stays <= high, emitting payloads.

    Register plan: r1 = terminal-slot address (input, NULL for an empty
    range), r2 = high (input), r3-r6 scratch, r12 = key mask (static),
    r13 = constant 1.
    """
    lines = [
        f".name {name}",
        ".role W",
        ".input r1, r2",
        f".const r12 = {(1 << 32) - 1:#x}",
        ".const r13 = 1",
        "scan:",
        "  ble r1, r0, done",      # NULL start / end of chain
        "  ld.8 r3, [r1+0]",       # tag = key + depth bit
        "  and r4, r3, r12",       # strip the depth bit
        "  cmp-le r5, r4, r2",
        "  ble r5, r0, done",      # key > high: past the range
        "  ld.4 r6, [r1+8]",
        "  emit r6",
        "  ld.8 r1, [r1+16]",      # next terminal
        "  ba scan",
        "done:",
        "  halt",
    ]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), {}, source)


def _wormhole_locate_lines(hash_spec: HashSpec,
                           key_reg: str = "r1") -> List[str]:
    """Binary-search the MetaTrieHash for ``key_reg``'s longest anchor
    prefix, then walk the leaf chain forward; falls through to the
    ``leafscan:`` label with r2 = the leaf covering the key.

    r2 enters holding the first leaf (presence at depth 0 is implicit)
    and tracks the best ``leaf_lo`` seen; r3-r7 are scratch.
    """
    blocks: Dict[Tuple[int, int], List[str]] = {}

    def target(lo: int, hi: int) -> str:
        if lo == hi:
            return "walkleaf"
        emit_state(lo, hi)
        return f"s{lo}_{hi}"

    def emit_state(lo: int, hi: int) -> None:
        if (lo, hi) in blocks:
            return
        blocks[(lo, hi)] = []          # reserve before recursing
        mid = (lo + hi + 1) // 2
        body, _constants = _hash_body(hash_spec.steps, "r5", "r5")
        lines = [f"s{lo}_{hi}:",
                 f"  shr r5, {key_reg}, #{32 - 4 * mid}",
                 f"  add-shf r5, r5, r13, #{32 + mid}",
                 "  add r4, r5, r0"]            # expect tag, pre-hash
        lines += body
        lines += ["  and r5, r5, r15",
                  "  add-shf r7, r14, r5, #6",
                  f"c{lo}_{hi}:"]
        for slot in range(3):
            lines += [
                f"  ld.8 r3, [r7+{16 + 16 * slot}]",
                "  cmp r6, r3, r4",
                f"  ble r13, r6, h{lo}_{hi}_{slot}",
            ]
        absent = target(lo, mid - 1)
        lines += [
            "  ld.8 r7, [r7+0]",
            f"  ble r7, r0, {absent}",
            f"  ba c{lo}_{hi}",
        ]
        present = target(mid, hi)
        for slot in range(3):
            lines += [
                f"h{lo}_{hi}_{slot}:",
                f"  ld.8 r2, [r7+{24 + 16 * slot}]",   # entry's leaf_lo
                f"  ba {present}",
            ]
        blocks[(lo, hi)] = lines

    entry = target(0, 8)
    lines: List[str] = [f"  ba {entry}"] if entry != "walkleaf" else []
    for state in sorted(blocks):
        lines += blocks[state]
    lines += [
        "walkleaf:",
        "  ld.8 r3, [r2+40]",          # next-leaf pointer
        "  ble r3, r0, leafscan",
        "  ld.4 r4, [r3+8]",           # next leaf's anchor (keys[0])
        f"  cmp-le r5, r4, {key_reg}",
        "  ble r13, r5, advance",
        "  ba leafscan",
        "advance:",
        "  add r2, r3, r0",
        "  ba walkleaf",
        "leafscan:",
    ]
    return lines


def wormhole_walker_program(hash_spec: HashSpec,
                            name: str = "wormhole-walk") -> GeneratedProgram:
    """Wormhole point lookup: O(log 8) independent MetaTrieHash probes
    replace the tree descent, then a short leaf walk and slot scan.

    Register plan: r1 = probe key (input), r2 = first leaf (input,
    becomes the best-so-far leaf_lo), r3-r9 scratch, r13 = constant 1,
    r14 = meta base (config), r15 = meta mask (config).
    """
    _require_fused_hash(hash_spec, "wormhole walker")
    lines = [
        f".name {name}",
        ".role W",
        ".input r1, r2",
        ".const r13 = 1",
    ]
    lines += _wormhole_locate_lines(hash_spec, "r1")
    for slot in range(4):
        skip = f"miss{slot}"
        lines += [
            f"  ld.4 r5, [r2+{8 + 4 * slot}]",
            "  cmp r6, r5, r1",
            f"  ble r6, r0, {skip}",
            f"  ld.4 r9, [r2+{24 + 4 * slot}]",
            "  emit r9",
            "  ba done",
            f"{skip}:",
        ]
    lines += ["done:", "  halt"]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), dict(WORMHOLE_WALKER_CONFIG),
                            source)


def wormhole_range_walker_program(hash_spec: HashSpec,
                                  name: str = "wormhole-range"
                                  ) -> GeneratedProgram:
    """Wormhole range scan: locate the leaf covering ``low`` via the
    MetaTrieHash, then stream the sorted leaf chain emitting payloads
    with low <= key <= high (pad slots terminate the scan, as in the
    tree range walker).

    Register plan: r1 = low (input), r2 = first leaf (input), r10 = high
    (input), r3-r9 scratch, r13 = constant 1, r14/r15 = meta config.
    """
    _require_fused_hash(hash_spec, "wormhole walker")
    lines = [
        f".name {name}",
        ".role W",
        ".input r1, r2, r10",
        ".const r13 = 1",
    ]
    lines += _wormhole_locate_lines(hash_spec, "r1")
    for slot in range(4):
        lines += [
            f"  ld.4 r5, [r2+{8 + 4 * slot}]",
            "  cmp-le r6, r5, r10",          # key <= high?
            "  ble r6, r0, done",            # key > high (or pad): finished
            f"  cmp-le r7, r1, r5",          # low <= key?
            f"  ble r7, r0, skip{slot}",
            f"  ld.4 r9, [r2+{24 + 4 * slot}]",
            "  emit r9",
            f"skip{slot}:",
        ]
    lines += [
        "  ld.8 r2, [r2+40]",                # next-leaf pointer
        "  ble r2, r0, done",
        "  ba leafscan",
        "done:",
        "  halt",
    ]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), dict(WORMHOLE_WALKER_CONFIG),
                            source)


def batched_tree_walker_program(batch: int = 4, *, stride_batches: int = 1,
                                name: str = "tree-batch"
                                ) -> GeneratedProgram:
    """Level-wise batched B+-tree descent (the FPGA batch-search pattern).

    An autonomous walker loads a whole batch of probe keys into
    registers, then descends *all* of them one level per iteration.
    Bulk-loaded trees have uniform leaf depth, so a single leaf-bit test
    on the first probe's node covers the batch.  When the driver sorts
    each batch, neighbouring probes route through the same upper-level
    nodes and the repeat fetches hit in the L1 — the amortization the
    functional :func:`repro.db.btree.batched_search` expresses by
    visiting each node once.

    Register plan: r1 = key cursor (config), r14 = batch count (config),
    r15 = root (config), r13 = constant 1, r16..r19 = batch keys,
    r20..r23 = per-key node pointers, r3-r7 scratch.
    """
    if not 2 <= batch <= 4:
        raise AssemblerError("batched walker holds 2..4 probes in registers")
    step_bytes = stride_batches * batch * 4
    lines = [
        f".name {name}",
        ".role W",
        ".const r13 = 1",
        "loop:",
        "  ble r14, r0, done",
    ]
    for i in range(batch):
        lines.append(f"  ld.4 r{16 + i}, [r1+{4 * i}]")
    for i in range(batch):
        lines.append(f"  add r{20 + i}, r15, r0")
    lines += [
        "level:",
        "  ld.8 r3, [r20+0]",          # first probe's node meta
        "  and r4, r3, r13",
        "  ble r13, r4, atleaf",       # uniform depth: one test per level
    ]
    for i in range(batch):
        key, node = f"r{16 + i}", f"r{20 + i}"
        for slot in range(4):
            lines += [
                f"  ld.4 r5, [{node}+{8 + 4 * slot}]",
                f"  cmp-le r6, {key}, r5",
                f"  ble r13, r6, b{i}c{slot}",
            ]
        lines += [
            f"  ld.8 {node}, [{node}+56]",     # key > every separator
            f"  ba b{i}x",
        ]
        for slot in range(4):
            lines += [
                f"b{i}c{slot}:",
                f"  ld.8 {node}, [{node}+{24 + 8 * slot}]",
                f"  ba b{i}x",
            ]
        lines.append(f"b{i}x:")
    lines.append("  ba level")
    lines.append("atleaf:")
    for i in range(batch):
        key, node = f"r{16 + i}", f"r{20 + i}"
        for slot in range(4):
            lines += [
                f"  ld.4 r5, [{node}+{8 + 4 * slot}]",
                f"  cmp r6, r5, {key}",
                f"  ble r6, r0, l{i}m{slot}",
                f"  ld.4 r7, [{node}+{24 + 4 * slot}]",
                "  emit r7",
                f"  ba l{i}end",
                f"l{i}m{slot}:",
            ]
        lines.append(f"l{i}end:")
    lines += [
        f"  add r1, r1, #{step_bytes}",
        "  add r14, r14, #-1",
        "  ba loop",
        "done:",
        "  halt",
    ]
    source = "\n".join(lines)
    return GeneratedProgram(assemble(source), dict(BATCHED_TREE_CONFIG),
                            source)
