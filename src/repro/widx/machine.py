"""WidxMachine: wiring units into the Figure 3 / Figure 6 organizations.

Three organizations, matching the paper's design evolution:

* ``coupled`` (Figure 3a/3b): N autonomous walkers run the whole probe
  loop (inline hashing), striding the key table.
* ``private`` (Figure 3c): N dispatcher/walker pairs; each dispatcher
  hashes a stride of the key table and feeds its own walker through a
  2-entry queue.
* ``shared`` (Figure 3d / Figure 6, the Widx design): one dispatcher
  hashes every key and feeds all walkers through a shared hashed-key
  buffer of N x 2 entries; walkers funnel matches to a single output
  producer.

All units share one memory hierarchy (the host core's TLB and L1-D — the
paper's tight coupling) and are co-simulated on one event engine, so port,
MSHR and bandwidth contention between units is modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..config import SystemConfig
from ..errors import ConfigError, WidxFault
from ..mem.hierarchy import MemoryHierarchy
from ..mem.physmem import PhysicalMemory
from ..sim.engine import Engine, Process
from ..sim.events import Event
from ..sim.resources import QUEUE_CLOSED, BoundedQueue
from ..sim.sanitize import hierarchy_pools, sanitize_run
from ..sim.watchdog import Watchdog
from .programs import GeneratedProgram
from .unit import UnitCycleBreakdown, UnitStats, WidxUnit

#: Fault kinds a unit can suffer mid-offload.
FAULT_KINDS = ("fail-stop", "stall")


@dataclass(frozen=True)
class UnitFault:
    """One injected unit fault: ``unit`` dies (or wedges) at ``cycle``.

    ``fail-stop`` kills the unit's process outright; in the shared
    organization a walker's death is *survivable* — its in-flight hashed
    key is salvaged back onto the shared queue for the surviving walkers
    — while a dispatcher/producer death, a private/coupled walker death,
    or the last walker's death aborts the whole offload (raised as
    :class:`~repro.errors.WidxFault` after the run drains).  ``stall``
    freezes the unit forever without completing it, so the run wedges
    and surfaces through the engine's deadlock detection
    (:class:`~repro.errors.SimulationHang`) — the watchdog path.
    """

    unit: str
    cycle: float
    kind: str = "fail-stop"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {FAULT_KINDS}")
        if self.cycle < 0:
            raise ConfigError(
                f"fault cycle must be >= 0, got {self.cycle!r}")


@dataclass
class WidxRunResult:
    """Outcome of one Widx offload run."""

    total_cycles: float
    tuples: int
    matches: int
    config_cycles: float
    unit_stats: Dict[str, UnitStats] = field(default_factory=dict)

    @property
    def cycles_per_tuple(self) -> float:
        if self.tuples == 0:
            return 0.0
        return self.total_cycles / self.tuples

    def walker_breakdown(self) -> UnitCycleBreakdown:
        """Aggregate walker cycle breakdown (the Figure 8a/9 bars).

        Walker time not accounted by Comp/Mem/TLB/queue-stall is the time
        the walker spent waiting for the dispatcher (Idle); we additionally
        fold each walker's end-of-run slack into Idle so the bars of all
        walkers cover the same wall-clock window, as in the paper.
        """
        merged = UnitCycleBreakdown()
        count = 0
        for name, stats in self.unit_stats.items():
            if name.startswith("walker"):
                breakdown = stats.cycles
                slack = max(0.0, self.total_cycles - breakdown.total)
                breakdown = UnitCycleBreakdown(
                    comp=breakdown.comp, mem=breakdown.mem,
                    tlb=breakdown.tlb, idle=breakdown.idle + slack,
                    queue=breakdown.queue)
                merged = merged.merged(breakdown)
                count += 1
        if count == 0:
            return merged
        return merged.scaled(1.0 / count)

    def walker_cycles_per_tuple(self) -> UnitCycleBreakdown:
        """Per-tuple walker breakdown, the exact Y axis of Figures 8a/9."""
        if self.tuples == 0:
            return UnitCycleBreakdown()
        return self.walker_breakdown().scaled(1.0 / self.tuples)


class WidxMachine:
    """Builds, configures and runs one Widx organization."""

    def __init__(self, config: SystemConfig, hierarchy: MemoryHierarchy,
                 physmem: PhysicalMemory,
                 engine: Optional[Engine] = None,
                 tracer=None, unit_cls: type = WidxUnit) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.physmem = physmem
        # Several machines may co-simulate on one engine (multi-core CMP).
        self.engine = engine if engine is not None else Engine()
        self.tracer = tracer
        # Injectable unit implementation: the differential tests and the
        # benchmarks build machines from ReferenceWidxUnit.
        self.unit_cls = unit_cls
        self.units: Dict[str, WidxUnit] = {}
        self._autonomous: List[WidxUnit] = []
        self._walkers: List[WidxUnit] = []
        self._producer: Optional[WidxUnit] = None
        self._key_queues: List[BoundedQueue] = []
        self._out_queue: Optional[BoundedQueue] = None
        self._built = False
        # Fault-injection state (run(faults=...)).
        self._procs: Dict[str, Process] = {}
        self._dead: Set[str] = set()
        self._faults_applied = 0
        self._fault_abort: Optional[UnitFault] = None
        self._finished_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def build(self, dispatcher: Optional[GeneratedProgram],
              walker: GeneratedProgram,
              producer: GeneratedProgram) -> None:
        """Instantiate units and queues for the configured mode.

        ``dispatcher`` must be None for ``coupled`` mode (the walker
        program hashes inline) and a generated dispatcher otherwise.  In
        ``private`` mode the same dispatcher program is instantiated once
        per walker (each configured with a strided cursor).
        """
        widx = self.config.widx
        mode = widx.mode
        n = widx.num_walkers
        if mode == "coupled":
            if dispatcher is not None:
                raise ConfigError("coupled mode takes no dispatcher program")
        elif dispatcher is None:
            raise ConfigError(f"{mode} mode needs a dispatcher program")

        out_capacity = max(1, n * widx.queue_entries)
        self._out_queue = BoundedQueue(self.engine, out_capacity, "to-producer")

        if mode == "shared":
            shared = BoundedQueue(self.engine, n * widx.queue_entries, "hashed-keys")
            self._key_queues = [shared]
            unit = self.unit_cls("dispatcher", dispatcher.program, self.engine,
                            self.hierarchy, self.physmem, out_queue=shared)
            self.units["dispatcher"] = unit
            self._autonomous.append(unit)
            for i in range(n):
                walker_unit = self.unit_cls(f"walker{i}", walker.program, self.engine,
                                       self.hierarchy, self.physmem,
                                       in_queue=shared, out_queue=self._out_queue)
                self.units[f"walker{i}"] = walker_unit
                self._walkers.append(walker_unit)
        elif mode == "private":
            for i in range(n):
                queue = BoundedQueue(self.engine, widx.queue_entries,
                                     f"hashed-keys{i}")
                self._key_queues.append(queue)
                d_unit = self.unit_cls(f"dispatcher{i}", dispatcher.program,
                                  self.engine, self.hierarchy, self.physmem,
                                  out_queue=queue)
                self.units[f"dispatcher{i}"] = d_unit
                self._autonomous.append(d_unit)
                w_unit = self.unit_cls(f"walker{i}", walker.program, self.engine,
                                  self.hierarchy, self.physmem,
                                  in_queue=queue, out_queue=self._out_queue)
                self.units[f"walker{i}"] = w_unit
                self._walkers.append(w_unit)
        else:  # coupled
            for i in range(n):
                w_unit = self.unit_cls(f"walker{i}", walker.program, self.engine,
                                  self.hierarchy, self.physmem,
                                  out_queue=self._out_queue)
                self.units[f"walker{i}"] = w_unit
                self._walkers.append(w_unit)
                self._autonomous.append(w_unit)

        self._producer = self.unit_cls("producer", producer.program, self.engine,
                                  self.hierarchy, self.physmem,
                                  in_queue=self._out_queue)
        self.units["producer"] = self._producer
        self._built = True
        if self.tracer is not None:
            self._attach_tracer(self.tracer)

    def attach_trail(self, recorder) -> None:
        """Wire per-invocation trail capture to every dispatched walker.

        Only queue-driven walkers get a recorder: each of their
        invocations is one probe key, so one trail is one request's
        traversal path.  Autonomous units (the dispatcher, coupled-mode
        walkers) run a single invocation spanning the whole key table —
        a "trail" of theirs would be the entire run, so they stay
        unhooked and pay nothing.
        """
        if not self._built:
            raise ConfigError("call build() before attach_trail()")
        for unit in self._walkers:
            if unit in self._autonomous:
                continue
            unit.set_trail(recorder)

    def _attach_tracer(self, tracer) -> None:
        """Wire every unit, inter-unit queue and hierarchy pool to ``tracer``."""
        for unit in self.units.values():
            unit.set_tracer(tracer)
        for queue in self._key_queues + [self._out_queue]:
            if queue is not None:
                queue.set_tracer(tracer, f"queue.{queue.name}")
        for name, pool in hierarchy_pools(self.hierarchy):
            pool.set_tracer(tracer, name)

    def configure_unit(self, name: str, values: Dict[int, int]) -> None:
        """Write a unit's memory-mapped configuration registers."""
        self.units[name].configure(values)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def configuration_cycles(self) -> float:
        """Cost of loading the Widx control block (Section 4.3).

        The host core writes the control-block address, then Widx issues a
        series of loads for each unit's instructions and constants.  We
        charge one cycle per instruction word and constant, plus a fixed
        start-up cost; the paper notes this is amortized over millions of
        probes — the tests assert that property.
        """
        total = 50.0  # config-register writes + kick-off
        if self.config.widx.placement == "pim":
            # Near-memory walkers are armed over the host<->PIM command
            # interface: the control block and kick-off cross the memory
            # channel instead of staying on-chip.  Charged here (per
            # offload, alongside the control-block load) so it amortizes
            # over bulk probes but stays strictly additive on every
            # serving batch's critical path.
            total += self.config.pim.launch_cycles
        for unit in self.units.values():
            total += len(unit.program.instructions)
            total += len(unit.program.constants)
        return total

    def launch(self) -> None:
        """Register every unit process on the engine (without running it).

        Used directly when several machines co-simulate on a shared engine
        (the multi-core CMP); single-machine callers use :meth:`run`.
        """
        if not self._built:
            raise ConfigError("call build() before launch()")
        engine = self.engine
        for queue in self._key_queues + [self._out_queue]:
            if queue is not None:
                engine.monitor_resource(queue.name, queue)
        for name, pool in hierarchy_pools(self.hierarchy):
            engine.monitor_resource(name, pool)
        walker_procs: List[Process] = []
        autonomous_procs: List[Process] = []
        for unit in self._walkers:
            if unit in self._autonomous:
                continue
            proc = engine.process(unit.run(), unit.name)
            walker_procs.append(proc)
            self._procs[unit.name] = proc
        for unit in self._autonomous:
            proc = engine.process(unit.run(), unit.name)
            autonomous_procs.append(proc)
            self._procs[unit.name] = proc
        self._procs["producer"] = engine.process(self._producer.run(),
                                                 "producer")

        # Close the hashed-key queues once every autonomous unit finishes,
        # and the producer queue once every walker finishes.
        self._chain_close(autonomous_procs, self._key_queues)
        self._chain_close(autonomous_procs + walker_procs, [self._out_queue])

    def register_into(self, registry, prefix: str = "widx",
                      queue_prefix: str = "sim.queue") -> None:
        """Publish per-unit stats and inter-unit queue counters.

        ``queue_prefix`` is separate because queue names repeat across
        machines (every machine has a "to-producer"); the CMP passes a
        per-core prefix to keep paths unique.
        """
        for name, unit in self.units.items():
            unit.stats.register_into(registry, f"{prefix}.{name}")
        for queue in self._key_queues + [self._out_queue]:
            if queue is not None:
                queue.register_into(registry, f"{queue_prefix}.{queue.name}")

    def collect(self, expected_tuples: int) -> WidxRunResult:
        """Gather results after the (shared) engine has run to completion."""
        matches = int(self._producer.stats.invocations)
        # With faults armed, an injection scheduled past the end of the
        # work leaves the engine clock at the injection time, not the
        # completion time; the recorded all-units-done instant is the
        # honest makespan.
        total = (self._finished_at
                 if self._finished_at is not None else self.engine.now)
        return WidxRunResult(
            total_cycles=total,
            tuples=expected_tuples,
            matches=matches,
            config_cycles=self.configuration_cycles(),
            unit_stats={name: unit.stats for name, unit in self.units.items()},
        )

    def run(self, expected_tuples: int,
            watchdog: Optional[Watchdog] = None,
            sanitize: bool = True,
            faults: Iterable[UnitFault] = ()) -> WidxRunResult:
        """Run the offload to completion; returns timing and stats.

        A :class:`~repro.sim.watchdog.Watchdog` (a default-limits one
        unless provided) polices livelock and budget overruns during the
        run; afterwards the end-of-run sanitizer verifies the engine
        drained, every inter-unit queue emptied, and no MSHR/TLB pool
        leaked — so a wedged run raises instead of reporting garbage.

        ``faults`` injects :class:`UnitFault` events mid-run.  A
        survivable fault (shared-mode walker death with survivors)
        degrades the run; an unsurvivable one raises
        :class:`~repro.errors.WidxFault` once the engine drains, and a
        stall raises :class:`~repro.errors.SimulationHang` — never a
        silent wrong answer.
        """
        self.launch()
        faults = tuple(faults)
        if faults:
            self._arm_faults(faults)
        if watchdog is not None:
            watchdog.attach(self.engine)
        elif self.engine.watchdog is None:
            Watchdog().attach(self.engine)
        self.engine.run()
        if self._fault_abort is not None:
            fault = self._fault_abort
            raise WidxFault(
                f"offload aborted: {fault.kind} of {fault.unit!r} at cycle "
                f"{fault.cycle:g} is unrecoverable in "
                f"{self.config.widx.mode!r} mode")
        if self._faults_applied:
            for queue in self._key_queues + [self._out_queue]:
                if queue is not None and len(queue) > 0:
                    raise WidxFault(
                        f"in-flight work lost to a fault: queue "
                        f"{queue.name!r} still holds {len(queue)} item(s) "
                        f"after the run drained")
        if sanitize:
            sanitize_run(self.engine,
                         self._key_queues + [self._out_queue],
                         self.hierarchy)
        return self.collect(expected_tuples)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def _arm_faults(self, faults: Iterable[UnitFault]) -> None:
        """Schedule each fault's injection and the makespan tracker."""
        engine = self.engine
        for fault in faults:
            if fault.unit not in self._procs:
                raise ConfigError(
                    f"cannot inject fault into unknown unit {fault.unit!r}; "
                    f"units are {sorted(self._procs)}")
            # Default arg binds the current fault (late binding would
            # deliver the last fault to every callback).
            engine.schedule_at(fault.cycle,
                               lambda fault=fault: self._apply_fault(fault))
        # Record when all units are done: injections scheduled past that
        # instant still advance the engine clock, but must not inflate
        # the reported makespan (see collect()).
        state = {"remaining": len(self._procs)}

        def on_done(_event) -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                self._finished_at = engine.now

        for proc in self._procs.values():
            proc.add_callback(on_done)

    def _live_walkers(self) -> List[WidxUnit]:
        """Walkers whose processes are still running (not dead, not done)."""
        return [unit for unit in self._walkers
                if unit.name not in self._dead
                and not self._procs[unit.name].triggered]

    def _apply_fault(self, fault: UnitFault) -> None:
        proc = self._procs[fault.unit]
        if proc.triggered or fault.unit in self._dead:
            return  # the unit already finished (or died): the fault missed
        self._faults_applied += 1
        self._dead.add(fault.unit)
        if fault.kind == "stall":
            # The unit wedges without completing: close chains never
            # fire, the queue drains, and the engine reports a deadlock
            # with this process named in the diagnostics.
            proc.suspend()
            return
        unit = self.units[fault.unit]
        # The dying unit is already in _dead, so _live_walkers() counts
        # only potential survivors.
        survivable = (self.config.widx.mode == "shared"
                      and unit in self._walkers
                      and unit not in self._autonomous
                      and len(self._live_walkers()) >= 1)
        if not survivable:
            self._fault_abort = fault
            self._abort_all()
            return
        self._salvage_walker(unit, proc)
        proc.terminate()

    def _salvage_walker(self, unit: WidxUnit, proc: Process) -> None:
        """Requeue a dying shared-mode walker's in-flight hashed key.

        Exact for single-emit traversals (hash probes with unique keys):
        either the walker had not yet emitted for its current key — the
        key goes back on the shared queue head for a surviving walker —
        or its emit is already committed to the output queue (put()
        delivers even when parked) and dropping the rest of the
        invocation loses nothing externally visible.
        """
        in_queue = unit.in_queue
        target = proc.waiting_on
        if isinstance(target, Event) and not target.triggered:
            # Parked in get(): withdraw the pending event so the next
            # put cannot hand a key to a corpse.  (A parked *put* — not
            # in the getter line — leaves its item to deliver normally.)
            in_queue.cancel_get(target)
            return
        if (isinstance(target, Event) and target.triggered
                and target.value is not None
                and target.value is not QUEUE_CLOSED
                and unit.current_item is None):
            # The handoff fired but the walker never woke to process the
            # key (its resume is scheduled behind this injection).
            in_queue.restore(target.value)
            return
        if unit.current_item is not None and unit.invocation_emits == 0:
            # Mid-traversal, nothing emitted: replay the key elsewhere.
            in_queue.restore(unit.current_item)

    def _abort_all(self) -> None:
        """Unrecoverable fault: fail-stop every unit and close every
        queue, so the run drains immediately instead of deadlocking."""
        for proc in self._procs.values():
            proc.terminate()
        for queue in self._key_queues + [self._out_queue]:
            if queue is not None:
                queue.close()

    @staticmethod
    def _chain_close(procs: List[Process], queues: List[Optional[BoundedQueue]]) -> None:
        remaining = len(procs)
        if remaining == 0:
            for queue in queues:
                if queue is not None:
                    queue.close()
            return
        state = {"remaining": remaining}

        def on_done(_event) -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                for queue in queues:
                    if queue is not None:
                        queue.close()

        for proc in procs:
            proc.add_callback(on_done)
