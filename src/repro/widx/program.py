"""Widx programs: assembled instruction sequences plus their interface.

A program corresponds to one of the three functions the paper's
programming API requires (Section 4.2): key hashing (dispatcher), node
walk (walker), or result emission (producer).  The interface metadata —
input registers (loaded from the unit's input queue each invocation),
constant registers (preloaded from the Widx control block at configuration
time) and persistent registers (survive across invocations, e.g. the
producer's output pointer) — mirrors how the real control block configures
each unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import AssemblerError, RegisterBudgetExceeded
from .isa import Instruction, NUM_REGISTERS, Opcode, Register, UNIT_USAGE

#: Unit roles, named by the paper's Figure 6 letters.
ROLES = ("H", "W", "P")


@dataclass(frozen=True)
class UnitRole:
    """A unit role: H (dispatcher), W (walker) or P (output producer)."""

    letter: str

    def __post_init__(self) -> None:
        if self.letter not in ROLES:
            raise AssemblerError(f"unknown unit role {self.letter!r}")

    def __str__(self) -> str:
        return {"H": "dispatcher", "W": "walker", "P": "producer"}[self.letter]


DISPATCHER = UnitRole("H")
WALKER = UnitRole("W")
PRODUCER = UnitRole("P")


@dataclass(frozen=True)
class Program:
    """An assembled, validated Widx program."""

    name: str
    role: UnitRole
    instructions: Tuple[Instruction, ...]
    inputs: Tuple[Register, ...] = ()
    constants: Dict[int, int] = field(default_factory=dict)  # reg index -> value
    persistent: Tuple[Register, ...] = ()

    def __post_init__(self) -> None:
        if not self.instructions:
            raise AssemblerError(f"program {self.name!r} has no instructions")
        self._validate_usage()
        self._validate_registers()
        self._validate_targets()

    def _validate_usage(self) -> None:
        for pc, instruction in enumerate(self.instructions):
            allowed = UNIT_USAGE[instruction.opcode]
            if self.role.letter not in allowed:
                raise AssemblerError(
                    f"{self.name}@{pc}: {instruction.opcode.value} is not "
                    f"available to {self.role} units (Table 1)")

    def _validate_registers(self) -> None:
        highest = 0
        for instruction in self.instructions:
            for register in instruction.registers_used():
                if register.index > highest:
                    highest = register.index
        for index in self.constants:
            if index > highest:
                highest = index
        if highest >= NUM_REGISTERS:
            raise RegisterBudgetExceeded(
                f"program {self.name!r} uses r{highest}; only "
                f"{NUM_REGISTERS} registers exist and there is no push/pop")
        if 0 in self.constants:
            raise AssemblerError("r0 is hardwired to zero; cannot preload it")

    def _validate_targets(self) -> None:
        for pc, instruction in enumerate(self.instructions):
            if instruction.is_branch:
                target = instruction.target
                if target is None or not 0 <= target < len(self.instructions):
                    raise AssemblerError(
                        f"{self.name}@{pc}: unresolved or out-of-range "
                        f"branch target {target!r}")

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def static_instruction_count(self) -> int:
        return len(self.instructions)

    def uses_opcode(self, opcode: Opcode) -> bool:
        """True if any instruction has the given opcode."""
        return any(instr.opcode is opcode for instr in self.instructions)

    def opcode_histogram(self) -> Dict[str, int]:
        """Static instruction mix by mnemonic."""
        histogram: Dict[str, int] = {}
        for instruction in self.instructions:
            key = instruction.opcode.value
            histogram[key] = histogram.get(key, 0) + 1
        return histogram
