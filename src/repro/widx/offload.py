"""High-level Widx offload driver.

``offload_probe`` is the library's headline entry point: given a built
:class:`~repro.db.HashIndex` and a materialized probe-key column, it
generates the three Widx programs for the index's schema, configures a
:class:`WidxMachine`, runs the bulk probe to completion, and validates the
emitted matches against the functional reference — the paper's atomic
all-or-nothing offload, with the host core idle throughout.

Widx offloads always run on the discrete-event engine, even under the
harness's ``--bulk`` flag: the walkers *share* the MSHRs, cache ports and
(in shared mode) the dispatcher queue, so every probe's timing depends on
its neighbours' — exactly the contended-resource case the array replay in
:mod:`repro.sim.bulk` is defined to exclude.  Only the independent-probe
baselines (:func:`repro.cpu.timing.measure_indexing`) and the serving
sweep (:mod:`repro.serve.bulk`) have uncontended schedules to vectorize.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..config import SystemConfig, DEFAULT_CONFIG
from ..cpu.timing import warm_hash_index
from ..db.column import Column
from ..db.hashtable import HashIndex
from ..errors import MemoryError_, SimulationHang, WidxFault
from ..mem.hierarchy import MemoryHierarchy
from ..obs import StatsRegistry
from ..sim.watchdog import Watchdog
from .machine import UnitFault, WidxMachine, WidxRunResult
from .programs import (GeneratedProgram, coupled_walker_program,
                       dispatcher_program, producer_program, walker_program)

_offload_counter = itertools.count()


def _hierarchy_for(config: SystemConfig):
    """The memory path matching the configured Widx placement."""
    if config.widx.placement == "llc":
        from ..mem.llcside import LlcSideMemory
        return LlcSideMemory(config)
    if config.widx.placement == "pim":
        from ..mem.pimside import PimBankMemory
        return PimBankMemory(config)
    return MemoryHierarchy(config)


@dataclass
class OffloadOutcome:
    """Result of one accelerated bulk-probe operation."""

    run: WidxRunResult
    payloads: List[int] = field(default_factory=list)
    validated: Optional[bool] = None
    memory: Optional[MemoryHierarchy] = None
    programs: Dict[str, GeneratedProgram] = field(default_factory=dict)
    fell_back: bool = False             # aborted and re-ran on the host
    abort_cycles: float = 0.0           # Widx cycles wasted before abort
    stats: Optional[Dict[str, Any]] = None  # registry snapshot (to_dict)

    @property
    def cycles_per_tuple(self) -> float:
        return self.run.cycles_per_tuple

    @property
    def matches(self) -> int:
        return self.run.matches


def offload_probe(index: HashIndex, probe_column: Column, *,
                  config: SystemConfig = DEFAULT_CONFIG,
                  probes: Optional[int] = None,
                  warm: bool = True,
                  validate: bool = True,
                  memory: Optional[MemoryHierarchy] = None,
                  engine=None,
                  unit_cls=None,
                  fallback_to_host: bool = False,
                  configure_hook=None,
                  watchdog: Optional[Watchdog] = None,
                  tracer=None,
                  trail=None,
                  faults: Sequence[UnitFault] = ()) -> OffloadOutcome:
    """Probe ``index`` with the first ``probes`` keys of ``probe_column``
    on the configured Widx organization; returns timing plus results.

    ``fallback_to_host`` enables the paper's atomic all-or-nothing model
    (Section 4.3): if the accelerator faults (a bad control block, a wild
    pointer — anything other than a TLB miss, which the host MMU services
    in place), the offload aborts and the indexing operation re-executes
    completely on the host core; the returned outcome charges both the
    wasted accelerator cycles and the host re-run.

    ``memory``, ``engine`` and ``unit_cls`` inject a pre-built hierarchy,
    discrete-event engine and unit implementation — the differential tests
    and benchmarks use them to run the whole offload on the naive reference
    implementations (:class:`~repro.sim.reference.ReferenceEngine`,
    :func:`~repro.mem.reference.use_reference_arrays`,
    :class:`~repro.widx.reference.ReferenceWidxUnit`).

    ``configure_hook(machine)`` runs after standard configuration — used
    by fault-injection tests to corrupt configuration registers.

    ``watchdog`` overrides the default progress watchdog — pass one built
    from tighter :class:`~repro.sim.watchdog.WatchdogLimits` to budget the
    measurement's simulated cycles or wall-clock time.

    ``trail`` (a :class:`~repro.obs.metrics.Trail`) opts into walker-trail
    capture: every dispatched walker records each invocation's traversal
    path — per-``LD`` address and servicing cache level — into the
    bounded ring, and the filled Trail is published into the outcome's
    stats registry as ``widx.trails``.  Autonomous walkers (coupled
    mode) have no per-key invocations and record nothing.

    ``faults`` injects seeded :class:`~repro.widx.machine.UnitFault`
    events mid-offload (see :func:`repro.harness.chaos.walker_faults`).
    A survivable walker death degrades the run; an unrecoverable fault
    or stall aborts it — recovered on the host when
    ``fallback_to_host`` is set, raised otherwise.
    """
    if not probe_column.is_materialized:
        raise WidxFault("probe keys must be materialized in simulated memory")
    total_keys = len(probe_column.values)
    probes = total_keys if probes is None else min(probes, total_keys)
    if probes < 1:
        raise WidxFault("need at least one probe")

    space = index.space
    layout = index.layout
    widx = config.widx
    n = widx.num_walkers
    key_bytes = layout.key_bytes

    # Reference results: used both to size the output region and (if asked)
    # to validate the accelerated run.
    reference: List[int] = []
    for row in range(probes):
        reference.extend(index.probe(int(probe_column.values[row])))

    run_id = next(_offload_counter)
    # The output buffer is scratch: released (and the space's break rewound)
    # before returning, so every offload against this workload sees the
    # same address layout no matter how many offloads ran before it.
    out_region = space.allocate(f"{index.name}:out{run_id}",
                                max(64, 8 * (len(reference) + 1)), align=64)
    try:
        return _offload_probe_with_region(
            index, probe_column, probes, config, warm, validate, memory,
            fallback_to_host, configure_hook, reference, out_region,
            watchdog, tracer, engine, unit_cls, faults, trail)
    finally:
        space.release(out_region)


def _offload_probe_with_region(index, probe_column, probes, config, warm,
                               validate, memory, fallback_to_host,
                               configure_hook, reference, out_region,
                               watchdog=None, tracer=None,
                               engine=None, unit_cls=None,
                               faults=(), trail=None) -> OffloadOutcome:
    space = index.space
    layout = index.layout
    widx = config.widx
    n = widx.num_walkers
    key_bytes = layout.key_bytes

    # --- program generation -------------------------------------------
    programs: Dict[str, GeneratedProgram] = {}
    mode = widx.mode
    if mode == "coupled":
        walker = coupled_walker_program(index.hash_spec, layout,
                                        stride_keys=n)
        dispatcher = None
    else:
        stride = n if mode == "private" else 1
        dispatcher = dispatcher_program(index.hash_spec, layout,
                                        stride_keys=stride)
        walker = walker_program(layout)
        programs["dispatcher"] = dispatcher
    producer = producer_program(8)
    programs["walker"] = walker
    programs["producer"] = producer

    # --- machine ------------------------------------------------------
    hierarchy = memory if memory is not None else _hierarchy_for(config)
    if warm:
        warm_hash_index(hierarchy, index)
    machine_kwargs = {} if unit_cls is None else {"unit_cls": unit_cls}
    machine = WidxMachine(config, hierarchy, space.memory, engine=engine,
                          tracer=tracer, **machine_kwargs)
    machine.build(dispatcher, walker, producer)
    if trail is not None:
        from .trail import TrailRecorder
        machine.attach_trail(TrailRecorder(trail))

    mask = index.num_buckets - 1
    base = probe_column.region.base

    def dispatch_config(unit_index: int, stride: int) -> Dict[int, int]:
        first = unit_index
        count = 0 if first >= probes else (probes - first + stride - 1) // stride
        generated = dispatcher if dispatcher is not None else walker
        regs = generated.config_registers
        values = {
            regs["key_cursor"]: base + first * key_bytes,
            regs["key_count"]: count,
            regs["bucket_base"]: index.buckets.base,
            regs["bucket_mask"]: mask,
        }
        return values

    if mode == "shared":
        machine.configure_unit("dispatcher", dispatch_config(0, 1))
    elif mode == "private":
        for i in range(n):
            machine.configure_unit(f"dispatcher{i}", dispatch_config(i, n))
    else:  # coupled walkers hash inline
        for i in range(n):
            machine.configure_unit(f"walker{i}", dispatch_config(i, n))

    if layout.indirect:
        column_reg = walker.config_registers["column_base"]
        column_base = index.key_column.region.base
        for i in range(n):
            machine.configure_unit(f"walker{i}", {column_reg: column_base})

    machine.configure_unit(
        "producer",
        {producer.config_registers["out_cursor"]: out_region.base})
    if configure_hook is not None:
        configure_hook(machine)

    # --- run and read back --------------------------------------------
    try:
        run = machine.run(expected_tuples=probes, watchdog=watchdog,
                          faults=faults)
    except (MemoryError_, WidxFault):
        if not fallback_to_host:
            raise
        return _host_fallback(index, probe_column, probes, config,
                              machine, programs, reference)
    except SimulationHang:
        # Only an injected stall makes a hang *expected* (the watchdog /
        # deadlock detector catching a wedged walker); a hang in a
        # fault-free run is a real bug and must propagate.
        if not (faults and fallback_to_host):
            raise
        return _host_fallback(index, probe_column, probes, config,
                              machine, programs, reference)
    payloads = [space.memory.read_u64(out_region.base + 8 * i)
                for i in range(run.matches)]

    validated: Optional[bool] = None
    if validate:
        validated = sorted(payloads) == sorted(reference)
        if not validated:
            raise WidxFault(
                f"Widx offload diverged from the reference probe: "
                f"{len(payloads)} emitted vs {len(reference)} expected")
    registry = StatsRegistry()
    hierarchy.register_into(registry, "mem")
    machine.register_into(registry)
    machine.engine.register_into(registry, "sim.engine")
    if trail is not None:
        registry.register("widx.trails", trail)
    return OffloadOutcome(run=run, payloads=payloads, validated=validated,
                          memory=hierarchy, programs=programs,
                          stats=registry.to_dict())


def _host_fallback(index: HashIndex, probe_column: Column, probes: int,
                   config: SystemConfig, machine: WidxMachine,
                   programs: Dict[str, GeneratedProgram],
                   reference: List[int]) -> OffloadOutcome:
    """Abort the offload and re-execute the whole operation on the host
    core (the paper's all-or-nothing recovery path)."""
    from ..cpu.timing import measure_indexing

    abort_cycles = machine.engine.now
    if machine.tracer is not None:
        # The abort tears the machine down mid-flight; force-close any
        # in-progress unit spans so the trace stays well-formed.
        machine.tracer.close_all(abort_cycles)
    warmup = max(1, min(256, probes // 4))
    host = measure_indexing(index, probe_column, core="ooo", config=config,
                            warmup_probes=warmup,
                            measure_probes=probes - warmup)
    total = abort_cycles + host.cycles_per_tuple * probes
    run = WidxRunResult(total_cycles=total, tuples=probes,
                        matches=len(reference),
                        config_cycles=machine.configuration_cycles(),
                        unit_stats={name: unit.stats
                                    for name, unit in machine.units.items()})
    return OffloadOutcome(run=run, payloads=list(reference), validated=True,
                          memory=None, programs=programs, fell_back=True,
                          abort_cycles=abort_cycles)


def offload_tree_search(tree, probe_column: Column, *,
                        config: SystemConfig = DEFAULT_CONFIG,
                        probes: Optional[int] = None,
                        warm: bool = True,
                        validate: bool = True,
                        memory: Optional[MemoryHierarchy] = None
                        ) -> OffloadOutcome:
    """Accelerate B+-tree point lookups (the Section 7 tree extension).

    Same machine, different programs: the dispatcher streams probe keys
    (no hashing) and the walkers run the generated tree-descent function.
    Only the ``shared`` and ``private`` organizations apply — trees have no
    hashing stage to couple.
    """
    from ..db.btree import BPlusTree
    from .programs import (tree_dispatcher_program, tree_walker_program)

    if not isinstance(tree, BPlusTree):
        raise WidxFault("offload_tree_search expects a BPlusTree")
    if not probe_column.is_materialized:
        raise WidxFault("probe keys must be materialized in simulated memory")
    if config.widx.mode == "coupled":
        raise WidxFault("tree search has no hashing stage to couple; use "
                        "'shared' or 'private'")
    total_keys = len(probe_column.values)
    probes = total_keys if probes is None else min(probes, total_keys)
    if probes < 1:
        raise WidxFault("need at least one probe")

    space = tree.space
    widx = config.widx
    n = widx.num_walkers
    key_bytes = probe_column.dtype.nbytes

    reference = []
    for row in range(probes):
        payload = tree.search(int(probe_column.values[row]))
        if payload is not None:
            reference.append(payload)

    run_id = next(_offload_counter)
    out_region = space.allocate(f"{tree.name}:out{run_id}",
                                max(64, 8 * (len(reference) + 1)), align=64)
    try:
        stride = n if widx.mode == "private" else 1
        dispatcher = tree_dispatcher_program(key_bytes, stride_keys=stride)
        walker = tree_walker_program()
        producer = producer_program(8)

        hierarchy = memory if memory is not None else _hierarchy_for(config)
        if warm:
            hierarchy.warm_range(tree.region.base, tree.footprint_bytes)
        machine = WidxMachine(config, hierarchy, space.memory)
        machine.build(dispatcher, walker, producer)

        base = probe_column.region.base
        regs = dispatcher.config_registers

        def dispatch_config(unit_index: int, unit_stride: int):
            first = unit_index
            count = 0 if first >= probes else \
                (probes - first + unit_stride - 1) // unit_stride
            return {
                regs["key_cursor"]: base + first * key_bytes,
                regs["key_count"]: count,
                regs["root"]: tree.root,
            }

        if widx.mode == "shared":
            machine.configure_unit("dispatcher", dispatch_config(0, 1))
        else:
            for i in range(n):
                machine.configure_unit(f"dispatcher{i}", dispatch_config(i, n))
        machine.configure_unit(
            "producer",
            {producer.config_registers["out_cursor"]: out_region.base})

        run = machine.run(expected_tuples=probes)
        payloads = [space.memory.read_u64(out_region.base + 8 * i)
                    for i in range(run.matches)]
        validated: Optional[bool] = None
        if validate:
            validated = sorted(payloads) == sorted(reference)
            if not validated:
                raise WidxFault(
                    f"tree offload diverged: {len(payloads)} emitted vs "
                    f"{len(reference)} expected")
        return OffloadOutcome(run=run, payloads=payloads, validated=validated,
                              memory=hierarchy,
                              programs={"dispatcher": dispatcher,
                                        "walker": walker, "producer": producer})
    finally:
        space.release(out_region)


def offload_tree_ranges(tree, ranges, *,
                        config: SystemConfig = DEFAULT_CONFIG,
                        warm: bool = True,
                        validate: bool = True,
                        memory: Optional[MemoryHierarchy] = None
                        ) -> OffloadOutcome:
    """Accelerate multi-range B+-tree scans (IN-lists, multi-range
    predicates): the dispatcher streams (low, high) pairs and each walker
    scans one whole range — inter-range parallelism, the range analogue of
    the paper's inter-key parallelism.
    """
    from ..db.btree import BPlusTree, KEY_PAD
    from .programs import (range_dispatcher_program,
                           tree_range_walker_program)

    if not isinstance(tree, BPlusTree):
        raise WidxFault("offload_tree_ranges expects a BPlusTree")
    if config.widx.mode != "shared":
        raise WidxFault("range scans use the shared-dispatcher organization")
    ranges = [(int(low), int(high)) for low, high in ranges]
    if not ranges:
        raise WidxFault("need at least one range")
    for low, high in ranges:
        if not 0 <= low <= high < KEY_PAD:
            raise WidxFault(f"bad range [{low}, {high}]")

    space = tree.space
    n = config.widx.num_walkers
    run_id = next(_offload_counter)

    reference: List[int] = []
    for low, high in ranges:
        reference.extend(payload for _key, payload
                         in tree.range_scan(low, high))

    range_region = space.allocate(f"{tree.name}:ranges{run_id}",
                                  max(64, 8 * len(ranges)), align=64)
    try:
        for offset, (low, high) in enumerate(ranges):
            space.memory.write_u32(range_region.base + 8 * offset, low)
            space.memory.write_u32(range_region.base + 8 * offset + 4, high)
        out_region = space.allocate(f"{tree.name}:rout{run_id}",
                                    max(64, 8 * (len(reference) + 1)),
                                    align=64)
        try:
            dispatcher = range_dispatcher_program()
            walker = tree_range_walker_program()
            producer = producer_program(8)

            hierarchy = memory if memory is not None else _hierarchy_for(config)
            if warm:
                hierarchy.warm_range(tree.region.base, tree.footprint_bytes)
            machine = WidxMachine(config, hierarchy, space.memory)
            machine.build(dispatcher, walker, producer)
            regs = dispatcher.config_registers
            machine.configure_unit("dispatcher", {
                regs["range_cursor"]: range_region.base,
                regs["range_count"]: len(ranges),
                regs["root"]: tree.root,
            })
            machine.configure_unit(
                "producer",
                {producer.config_registers["out_cursor"]: out_region.base})

            run = machine.run(expected_tuples=len(ranges))
            payloads = [space.memory.read_u64(out_region.base + 8 * i)
                        for i in range(run.matches)]
            validated: Optional[bool] = None
            if validate:
                validated = sorted(payloads) == sorted(reference)
                if not validated:
                    raise WidxFault(
                        f"range offload diverged: {len(payloads)} emitted vs "
                        f"{len(reference)} expected")
            return OffloadOutcome(run=run, payloads=payloads,
                                  validated=validated, memory=hierarchy,
                                  programs={"dispatcher": dispatcher,
                                            "walker": walker,
                                            "producer": producer})
        finally:
            space.release(out_region)
    finally:
        space.release(range_region)


def _ordered_machine(config, hierarchy, space, engine=None, unit_cls=None):
    machine_kwargs = {} if unit_cls is None else {"unit_cls": unit_cls}
    return WidxMachine(config, hierarchy, space.memory, engine=engine,
                       **machine_kwargs)


def _read_payloads(space, out_region, run) -> List[int]:
    return [space.memory.read_u64(out_region.base + 8 * i)
            for i in range(run.matches)]


def _ordered_outcome(space, machine, hierarchy, run, out_region, reference,
                     validate, programs, label) -> OffloadOutcome:
    payloads = _read_payloads(space, out_region, run)
    validated: Optional[bool] = None
    if validate:
        validated = sorted(payloads) == sorted(reference)
        if not validated:
            raise WidxFault(
                f"{label} offload diverged: {len(payloads)} emitted vs "
                f"{len(reference)} expected")
    registry = StatsRegistry()
    hierarchy.register_into(registry, "mem")
    machine.register_into(registry)
    machine.engine.register_into(registry, "sim.engine")
    return OffloadOutcome(run=run, payloads=payloads, validated=validated,
                          memory=hierarchy, programs=programs,
                          stats=registry.to_dict())


def offload_trie_search(trie, probe_column: Column, *,
                        config: SystemConfig = DEFAULT_CONFIG,
                        probes: Optional[int] = None,
                        warm: bool = True,
                        validate: bool = True,
                        prefetch: bool = True,
                        memory: Optional[MemoryHierarchy] = None,
                        engine=None, unit_cls=None) -> OffloadOutcome:
    """Accelerate MLP-trie point lookups.

    The dispatcher streams bare keys; each walker computes all eight
    candidate bucket addresses from the key, TOUCHes them up front
    (``prefetch``), then probes depth by depth until a tag matches — the
    Cuckoo-Trie fetch pattern run on a Widx unit.
    """
    from ..db.trie import MlpTrie
    from .programs import key_dispatcher_program, trie_walker_program

    if not isinstance(trie, MlpTrie):
        raise WidxFault("offload_trie_search expects an MlpTrie")
    if not probe_column.is_materialized:
        raise WidxFault("probe keys must be materialized in simulated memory")
    if config.widx.mode == "coupled":
        raise WidxFault("trie search has no hashing stage to couple; use "
                        "'shared' or 'private'")
    total_keys = len(probe_column.values)
    probes = total_keys if probes is None else min(probes, total_keys)
    if probes < 1:
        raise WidxFault("need at least one probe")

    space = trie.space
    widx = config.widx
    n = widx.num_walkers
    key_bytes = probe_column.dtype.nbytes

    reference = []
    for row in range(probes):
        payload = trie.search(int(probe_column.values[row]))
        if payload is not None:
            reference.append(payload)

    run_id = next(_offload_counter)
    out_region = space.allocate(f"{trie.name}:out{run_id}",
                                max(64, 8 * (len(reference) + 1)), align=64)
    try:
        stride = n if widx.mode == "private" else 1
        dispatcher = key_dispatcher_program(key_bytes, stride_keys=stride)
        walker = trie_walker_program(trie.hash_spec, prefetch=prefetch)
        producer = producer_program(8)

        hierarchy = memory if memory is not None else _hierarchy_for(config)
        if warm:
            hierarchy.warm_range(trie.buckets.base, trie.buckets.size)
            if trie.overflow is not None:
                hierarchy.warm_range(trie.overflow.base, trie.overflow.size)
        machine = _ordered_machine(config, hierarchy, space, engine, unit_cls)
        machine.build(dispatcher, walker, producer)

        base = probe_column.region.base
        regs = dispatcher.config_registers

        def dispatch_config(unit_index: int, unit_stride: int):
            first = unit_index
            count = 0 if first >= probes else \
                (probes - first + unit_stride - 1) // unit_stride
            return {
                regs["key_cursor"]: base + first * key_bytes,
                regs["key_count"]: count,
            }

        if widx.mode == "shared":
            machine.configure_unit("dispatcher", dispatch_config(0, 1))
        else:
            for i in range(n):
                machine.configure_unit(f"dispatcher{i}", dispatch_config(i, n))
        walker_regs = walker.config_registers
        for i in range(n):
            machine.configure_unit(f"walker{i}", {
                walker_regs["bucket_base"]: trie.buckets.base,
                walker_regs["bucket_mask"]: trie.bucket_mask,
            })
        machine.configure_unit(
            "producer",
            {producer.config_registers["out_cursor"]: out_region.base})

        run = machine.run(expected_tuples=probes)
        return _ordered_outcome(
            space, machine, hierarchy, run, out_region, reference, validate,
            {"dispatcher": dispatcher, "walker": walker,
             "producer": producer}, "trie")
    finally:
        space.release(out_region)


def offload_trie_ranges(trie, ranges, *,
                        config: SystemConfig = DEFAULT_CONFIG,
                        warm: bool = True,
                        validate: bool = True,
                        memory: Optional[MemoryHierarchy] = None,
                        engine=None, unit_cls=None) -> OffloadOutcome:
    """Accelerate multi-range trie scans over the sorted terminal chain.

    The host plans each range's start terminal on its sorted key list
    (the same bisect any secondary-structure scan performs); the
    dispatcher streams (start, high) records and each walker streams one
    chain segment, emitting payloads while the stored key stays in range.
    """
    from ..db.trie import MlpTrie
    from .programs import (trie_range_dispatcher_program,
                           trie_range_walker_program)

    if not isinstance(trie, MlpTrie):
        raise WidxFault("offload_trie_ranges expects an MlpTrie")
    if config.widx.mode != "shared":
        raise WidxFault("range scans use the shared-dispatcher organization")
    ranges = [(int(low), int(high)) for low, high in ranges]
    if not ranges:
        raise WidxFault("need at least one range")
    for low, high in ranges:
        if not 0 <= low <= high:
            raise WidxFault(f"bad range [{low}, {high}]")

    space = trie.space
    run_id = next(_offload_counter)

    reference: List[int] = []
    for low, high in ranges:
        reference.extend(payload for _key, payload
                         in trie.range_scan(low, high))

    range_region = space.allocate(f"{trie.name}:ranges{run_id}",
                                  max(64, 16 * len(ranges)), align=64)
    try:
        for offset, (low, high) in enumerate(ranges):
            start = trie.search_start(low)
            space.memory.write_u64(range_region.base + 16 * offset, start)
            space.memory.write_u64(range_region.base + 16 * offset + 8, high)
        out_region = space.allocate(f"{trie.name}:rout{run_id}",
                                    max(64, 8 * (len(reference) + 1)),
                                    align=64)
        try:
            dispatcher = trie_range_dispatcher_program()
            walker = trie_range_walker_program()
            producer = producer_program(8)

            hierarchy = memory if memory is not None else _hierarchy_for(config)
            if warm:
                hierarchy.warm_range(trie.buckets.base, trie.buckets.size)
                if trie.overflow is not None:
                    hierarchy.warm_range(trie.overflow.base,
                                         trie.overflow.size)
            machine = _ordered_machine(config, hierarchy, space, engine,
                                       unit_cls)
            machine.build(dispatcher, walker, producer)
            regs = dispatcher.config_registers
            machine.configure_unit("dispatcher", {
                regs["range_cursor"]: range_region.base,
                regs["range_count"]: len(ranges),
            })
            machine.configure_unit(
                "producer",
                {producer.config_registers["out_cursor"]: out_region.base})

            run = machine.run(expected_tuples=len(ranges))
            return _ordered_outcome(
                space, machine, hierarchy, run, out_region, reference,
                validate, {"dispatcher": dispatcher, "walker": walker,
                           "producer": producer}, "trie range")
        finally:
            space.release(out_region)
    finally:
        space.release(range_region)


def _warm_wormhole(hierarchy, index) -> None:
    hierarchy.warm_range(index.leaves.base, index.leaves.size)
    hierarchy.warm_range(index.meta.base, index.meta.size)
    if index.overflow is not None:
        hierarchy.warm_range(index.overflow.base, index.overflow.size)


def offload_wormhole_search(index, probe_column: Column, *,
                            config: SystemConfig = DEFAULT_CONFIG,
                            probes: Optional[int] = None,
                            warm: bool = True,
                            validate: bool = True,
                            memory: Optional[MemoryHierarchy] = None,
                            engine=None, unit_cls=None) -> OffloadOutcome:
    """Accelerate wormhole point lookups.

    The tree dispatcher streams (key, first-leaf) pairs; each walker
    binary-searches the MetaTrieHash for the key's longest anchor prefix,
    then walks at most a few leaves forward — the collapsed pointer
    chain, run on a Widx unit.
    """
    from ..db.wormhole import WormholeIndex
    from .programs import tree_dispatcher_program, wormhole_walker_program

    if not isinstance(index, WormholeIndex):
        raise WidxFault("offload_wormhole_search expects a WormholeIndex")
    if not probe_column.is_materialized:
        raise WidxFault("probe keys must be materialized in simulated memory")
    if config.widx.mode == "coupled":
        raise WidxFault("wormhole search has no hashing stage to couple; "
                        "use 'shared' or 'private'")
    total_keys = len(probe_column.values)
    probes = total_keys if probes is None else min(probes, total_keys)
    if probes < 1:
        raise WidxFault("need at least one probe")

    space = index.space
    widx = config.widx
    n = widx.num_walkers
    key_bytes = probe_column.dtype.nbytes

    reference = []
    for row in range(probes):
        payload = index.search(int(probe_column.values[row]))
        if payload is not None:
            reference.append(payload)

    run_id = next(_offload_counter)
    out_region = space.allocate(f"{index.name}:out{run_id}",
                                max(64, 8 * (len(reference) + 1)), align=64)
    try:
        stride = n if widx.mode == "private" else 1
        dispatcher = tree_dispatcher_program(key_bytes, stride_keys=stride)
        walker = wormhole_walker_program(index.hash_spec)
        producer = producer_program(8)

        hierarchy = memory if memory is not None else _hierarchy_for(config)
        if warm:
            _warm_wormhole(hierarchy, index)
        machine = _ordered_machine(config, hierarchy, space, engine, unit_cls)
        machine.build(dispatcher, walker, producer)

        base = probe_column.region.base
        regs = dispatcher.config_registers

        def dispatch_config(unit_index: int, unit_stride: int):
            first = unit_index
            count = 0 if first >= probes else \
                (probes - first + unit_stride - 1) // unit_stride
            return {
                regs["key_cursor"]: base + first * key_bytes,
                regs["key_count"]: count,
                regs["root"]: index.first_leaf,
            }

        if widx.mode == "shared":
            machine.configure_unit("dispatcher", dispatch_config(0, 1))
        else:
            for i in range(n):
                machine.configure_unit(f"dispatcher{i}", dispatch_config(i, n))
        walker_regs = walker.config_registers
        for i in range(n):
            machine.configure_unit(f"walker{i}", {
                walker_regs["meta_base"]: index.meta.base,
                walker_regs["meta_mask"]: index.meta_mask,
            })
        machine.configure_unit(
            "producer",
            {producer.config_registers["out_cursor"]: out_region.base})

        run = machine.run(expected_tuples=probes)
        return _ordered_outcome(
            space, machine, hierarchy, run, out_region, reference, validate,
            {"dispatcher": dispatcher, "walker": walker,
             "producer": producer}, "wormhole")
    finally:
        space.release(out_region)


def offload_wormhole_ranges(index, ranges, *,
                            config: SystemConfig = DEFAULT_CONFIG,
                            warm: bool = True,
                            validate: bool = True,
                            memory: Optional[MemoryHierarchy] = None,
                            engine=None, unit_cls=None) -> OffloadOutcome:
    """Accelerate multi-range wormhole scans: locate ``low``'s leaf via
    the MetaTrieHash, then stream the sorted leaf chain."""
    from ..db.btree import KEY_PAD
    from ..db.wormhole import WormholeIndex
    from .programs import (range_dispatcher_program,
                           wormhole_range_walker_program)

    if not isinstance(index, WormholeIndex):
        raise WidxFault("offload_wormhole_ranges expects a WormholeIndex")
    if config.widx.mode != "shared":
        raise WidxFault("range scans use the shared-dispatcher organization")
    ranges = [(int(low), int(high)) for low, high in ranges]
    if not ranges:
        raise WidxFault("need at least one range")
    for low, high in ranges:
        if not 0 <= low <= high < KEY_PAD:
            raise WidxFault(f"bad range [{low}, {high}]")

    space = index.space
    run_id = next(_offload_counter)

    reference: List[int] = []
    for low, high in ranges:
        reference.extend(payload for _key, payload
                         in index.range_scan(low, high))

    range_region = space.allocate(f"{index.name}:ranges{run_id}",
                                  max(64, 8 * len(ranges)), align=64)
    try:
        for offset, (low, high) in enumerate(ranges):
            space.memory.write_u32(range_region.base + 8 * offset, low)
            space.memory.write_u32(range_region.base + 8 * offset + 4, high)
        out_region = space.allocate(f"{index.name}:rout{run_id}",
                                    max(64, 8 * (len(reference) + 1)),
                                    align=64)
        try:
            dispatcher = range_dispatcher_program()
            walker = wormhole_range_walker_program(index.hash_spec)
            producer = producer_program(8)

            hierarchy = memory if memory is not None else _hierarchy_for(config)
            if warm:
                _warm_wormhole(hierarchy, index)
            machine = _ordered_machine(config, hierarchy, space, engine,
                                       unit_cls)
            machine.build(dispatcher, walker, producer)
            regs = dispatcher.config_registers
            machine.configure_unit("dispatcher", {
                regs["range_cursor"]: range_region.base,
                regs["range_count"]: len(ranges),
                regs["root"]: index.first_leaf,
            })
            walker_regs = walker.config_registers
            for i in range(config.widx.num_walkers):
                machine.configure_unit(f"walker{i}", {
                    walker_regs["meta_base"]: index.meta.base,
                    walker_regs["meta_mask"]: index.meta_mask,
                })
            machine.configure_unit(
                "producer",
                {producer.config_registers["out_cursor"]: out_region.base})

            run = machine.run(expected_tuples=len(ranges))
            return _ordered_outcome(
                space, machine, hierarchy, run, out_region, reference,
                validate, {"dispatcher": dispatcher, "walker": walker,
                           "producer": producer}, "wormhole range")
        finally:
            space.release(out_region)
    finally:
        space.release(range_region)


def offload_batched_tree(tree, probe_column: Column, *,
                         config: SystemConfig = DEFAULT_CONFIG,
                         probes: Optional[int] = None,
                         batch: int = 4,
                         sort_batches: bool = True,
                         warm: bool = True,
                         validate: bool = True,
                         memory: Optional[MemoryHierarchy] = None,
                         engine=None, unit_cls=None) -> OffloadOutcome:
    """Accelerate level-wise *batched* B+-tree lookups.

    Autonomous walkers (the coupled organization, regardless of the
    configured mode — there is no dispatch stage) each load ``batch``
    probe keys into registers and descend them in lock-step, one tree
    level per iteration.  With ``sort_batches`` the driver stages a
    batch-locally sorted copy of the key stream, so a batch's probes
    route through shared upper-level nodes and the repeat fetches hit in
    the L1 — composing with the serve layer's ``size:N`` batching, whose
    admission queue hands the walker exactly such key groups.

    The probe count is truncated to a whole number of batches (serving
    batches are fixed-size by construction).
    """
    from ..db.btree import BPlusTree
    from .programs import batched_tree_walker_program

    if not isinstance(tree, BPlusTree):
        raise WidxFault("offload_batched_tree expects a BPlusTree")
    if not probe_column.is_materialized:
        raise WidxFault("probe keys must be materialized in simulated memory")
    total_keys = len(probe_column.values)
    probes = total_keys if probes is None else min(probes, total_keys)
    probes = (probes // batch) * batch
    if probes < batch:
        raise WidxFault(f"need at least one whole batch of {batch} probes")
    batches = probes // batch

    # Batched descent is an autonomous-walker program: force the coupled
    # organization while keeping the caller's walker count.
    config = config.with_widx(mode="coupled")
    space = tree.space
    n = config.widx.num_walkers

    staged: List[int] = []
    for start in range(0, probes, batch):
        group = [int(probe_column.values[start + i]) for i in range(batch)]
        if sort_batches:
            group.sort()
        staged.extend(group)
    reference = []
    for key in staged:
        payload = tree.search(key)
        if payload is not None:
            reference.append(payload)

    run_id = next(_offload_counter)
    key_region = space.allocate(f"{tree.name}:bkeys{run_id}",
                                max(64, 4 * probes), align=64)
    try:
        for offset, key in enumerate(staged):
            space.memory.write_u32(key_region.base + 4 * offset, key)
        out_region = space.allocate(f"{tree.name}:bout{run_id}",
                                    max(64, 8 * (len(reference) + 1)),
                                    align=64)
        try:
            walker = batched_tree_walker_program(batch, stride_batches=n)
            producer = producer_program(8)

            hierarchy = memory if memory is not None else _hierarchy_for(config)
            if warm:
                hierarchy.warm_range(tree.region.base, tree.footprint_bytes)
            machine = _ordered_machine(config, hierarchy, space, engine,
                                       unit_cls)
            machine.build(None, walker, producer)

            regs = walker.config_registers
            for i in range(n):
                first = i
                count = 0 if first >= batches else \
                    (batches - first + n - 1) // n
                machine.configure_unit(f"walker{i}", {
                    regs["key_cursor"]: key_region.base + first * batch * 4,
                    regs["batch_count"]: count,
                    regs["root"]: tree.root,
                })
            machine.configure_unit(
                "producer",
                {producer.config_registers["out_cursor"]: out_region.base})

            run = machine.run(expected_tuples=probes)
            return _ordered_outcome(
                space, machine, hierarchy, run, out_region, reference,
                validate, {"walker": walker, "producer": producer},
                "batched tree")
        finally:
            space.release(out_region)
    finally:
        space.release(key_region)
