"""Widx: the programmable index-traversal accelerator (the paper's core).

Widx is a set of tiny 2-stage RISC units sharing the host core's MMU and
L1-D (Figure 6):

* a **dispatcher** streams input keys from the probe table, hashes them
  with fused shift-ops, and enqueues (key, bucket address) pairs;
* **walkers** (up to four — the paper's bottleneck analysis caps useful
  concurrency there) pop hashed keys and chase the bucket's node list;
* an **output producer** stores matching payloads to the results region.

Each unit executes a real program in the Table 1 ISA, assembled by
:mod:`repro.widx.assembler` from text generated per schema/hash function by
:mod:`repro.widx.programs`.  Execution is co-simulated with the shared
memory hierarchy on the discrete-event engine, and each unit accounts its
cycles into the Figure 8a categories (Comp / Mem / TLB / Idle).
"""

from .isa import Opcode, Instruction, Register, UNIT_USAGE
from .program import Program, UnitRole
from .assembler import assemble
from .programs import dispatcher_program, walker_program, producer_program, \
    coupled_walker_program
from .machine import WidxMachine, WidxRunResult, UnitCycleBreakdown
from .offload import offload_probe, offload_tree_search, OffloadOutcome
from .trail import TrailRecorder

__all__ = [
    "Opcode",
    "Instruction",
    "Register",
    "UNIT_USAGE",
    "Program",
    "UnitRole",
    "assemble",
    "dispatcher_program",
    "walker_program",
    "producer_program",
    "coupled_walker_program",
    "WidxMachine",
    "WidxRunResult",
    "UnitCycleBreakdown",
    "offload_probe",
    "offload_tree_search",
    "OffloadOutcome",
    "TrailRecorder",
]
