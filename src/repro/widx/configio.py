"""The Widx control block: binary program images in simulated memory.

Section 4.3: "the application binary must contain a Widx control block,
composed of constants and instructions for each of the Widx dispatcher,
walker, and output producer units.  To configure Widx, the processor
initializes memory-mapped registers inside Widx with the starting address
... and length of the Widx control block.  Widx then issues a series of
loads to consecutive virtual addresses ... to load the instructions and
internal registers for each of its units."

This module implements exactly that: a 64-bit instruction encoding, a
serializer that lays a set of unit programs out as a control block in
simulated memory, a decoder that reconstructs the programs (round-trip
tested), and a loader that issues the configuration loads through the
memory hierarchy so the configuration cost is *measured*, not estimated.

Control-block format (all 64-bit little-endian words)::

    word 0            magic 'WIDXCTL1'
    word 1            number of unit images
    per unit image:
      header          role letter (8 bits) | #instructions (16) | #constants (16)
      instructions    one encoded word each
      constants       two words each: register index, value

Instruction word encoding (LSB upward)::

    bits  5:0    opcode ordinal
    bits 10:6    rd      bits 15:11  ra      bits 20:16  rb
    bit  21      rb present
    bit  22      8-byte access width (0 = 4-byte)
    bits 25:23   EMIT source count
    bits 30:26   sources[1]   bits 35:31  sources[2]  bits 40:36  sources[3]
    bit  41      immediate present
    bits 63:42   unused
    -- immediates/targets ride in a second word when present
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import AssemblerError, WidxFault
from ..mem.layout import AddressSpace, Region
from .isa import Instruction, Opcode, Register
from .program import Program, UnitRole

MAGIC = int.from_bytes(b"WIDXCTL1", "little")

_OPCODES = list(Opcode)
_OPCODE_INDEX = {opcode: i for i, opcode in enumerate(_OPCODES)}

_M64 = (1 << 64) - 1


def _field(value: int, shift: int, width: int) -> int:
    return (value & ((1 << width) - 1)) << shift


def _extract(word: int, shift: int, width: int) -> int:
    return (word >> shift) & ((1 << width) - 1)


def encode_instruction(instruction: Instruction) -> Tuple[int, Optional[int]]:
    """Encode one instruction; returns (word, optional immediate word).

    Branch targets are carried in the immediate word (they are resolved
    PC indices, not labels, by the time programs are serialized).
    """
    word = _field(_OPCODE_INDEX[instruction.opcode], 0, 6)
    if instruction.rd is not None:
        word |= _field(instruction.rd.index, 6, 5)
    if instruction.ra is not None:
        word |= _field(instruction.ra.index, 11, 5)
    if instruction.rb is not None:
        word |= _field(instruction.rb.index, 16, 5)
        word |= _field(1, 21, 1)
    if instruction.width == 8:
        word |= _field(1, 22, 1)
    sources = instruction.sources
    if sources:
        word |= _field(len(sources), 23, 3)
        word |= _field(sources[0].index, 6, 5)  # first source rides in rd
        for position, register in enumerate(sources[1:3 + 1]):
            word |= _field(register.index, 26 + 5 * position, 5)
    immediate: Optional[int] = None
    if instruction.is_branch:
        immediate = instruction.target
        word |= _field(1, 41, 1)
    elif instruction.imm is not None:
        immediate = instruction.imm & _M64
        word |= _field(1, 41, 1)
    return word, immediate


def decode_instruction(word: int, immediate: Optional[int]) -> Instruction:
    """Inverse of :func:`encode_instruction`."""
    try:
        opcode = _OPCODES[_extract(word, 0, 6)]
    except IndexError:
        raise WidxFault(f"control block: bad opcode in word {word:#x}")
    width = 8 if _extract(word, 22, 1) else 4
    nsrc = _extract(word, 23, 3)
    if nsrc:
        sources = [Register(_extract(word, 6, 5))]
        for position in range(nsrc - 1):
            sources.append(Register(_extract(word, 26 + 5 * position, 5)))
        return Instruction(opcode, sources=tuple(sources))
    rd = ra = rb = None
    if opcode in (Opcode.ADD, Opcode.AND, Opcode.XOR, Opcode.CMP,
                  Opcode.CMP_LE, Opcode.SHL, Opcode.SHR, Opcode.LD,
                  Opcode.ADD_SHF, Opcode.AND_SHF, Opcode.XOR_SHF):
        rd = Register(_extract(word, 6, 5))
    if opcode not in (Opcode.BA, Opcode.HALT):
        ra = Register(_extract(word, 11, 5))
    if _extract(word, 21, 1):
        rb = Register(_extract(word, 16, 5))
    imm: Optional[int] = None
    target: Optional[int] = None
    if _extract(word, 41, 1):
        if opcode in (Opcode.BA, Opcode.BLE):
            target = immediate
        else:
            imm = immediate
            if imm is not None and imm >= (1 << 63):
                imm -= 1 << 64  # restore negative immediates
    if opcode is Opcode.BA:
        return Instruction(opcode, target=target)
    if opcode is Opcode.BLE:
        return Instruction(opcode, ra=ra, rb=rb, target=target)
    if opcode is Opcode.HALT:
        return Instruction(opcode)
    return Instruction(opcode, rd=rd, ra=ra, rb=rb, imm=imm, width=width)


def serialize_control_block(space: AddressSpace, programs: List[Program],
                            name: str = "widx-ctl") -> Region:
    """Lay the unit programs out as a control block in simulated memory."""
    words: List[int] = [MAGIC, len(programs)]
    for program in programs:
        encoded: List[Tuple[int, Optional[int]]] = [
            encode_instruction(instruction)
            for instruction in program.instructions]
        constants = sorted(program.constants.items())
        header = (ord(program.role.letter)
                  | _field(len(encoded), 8, 16)
                  | _field(len(constants), 24, 16))
        words.append(header)
        for word, immediate in encoded:
            words.append(word)
            if immediate is not None:
                words.append(immediate)
        for register_index, value in constants:
            words.append(register_index)
            words.append(value & _M64)
    region = space.allocate(name, 8 * len(words), align=64)
    for offset, word in enumerate(words):
        space.memory.write_u64(region.base + 8 * offset, word)
    return region


def _read_words(space: AddressSpace, region: Region) -> List[int]:
    return [space.memory.read_u64(region.base + 8 * i)
            for i in range(region.size // 8)]


def deserialize_control_block(space: AddressSpace, region: Region,
                              names: Optional[List[str]] = None
                              ) -> List[Program]:
    """Reconstruct unit programs from a control block (round-trip check)."""
    words = _read_words(space, region)
    if not words or words[0] != MAGIC:
        raise WidxFault("not a Widx control block (bad magic)")
    cursor = 1
    unit_count = words[cursor]
    cursor += 1
    programs: List[Program] = []
    for unit in range(unit_count):
        header = words[cursor]
        cursor += 1
        role = UnitRole(chr(header & 0xFF))
        n_instructions = _extract(header, 8, 16)
        n_constants = _extract(header, 24, 16)
        instructions: List[Instruction] = []
        for _ in range(n_instructions):
            word = words[cursor]
            cursor += 1
            immediate = None
            if _extract(word, 41, 1):
                immediate = words[cursor]
                cursor += 1
            instructions.append(decode_instruction(word, immediate))
        constants: Dict[int, int] = {}
        for _ in range(n_constants):
            register_index = words[cursor]
            value = words[cursor + 1]
            cursor += 2
            constants[register_index] = value
        name = names[unit] if names else f"unit{unit}"
        # Inputs/persistent registers are part of the datapath wiring, not
        # the control block; reattach defaults by role.
        programs.append(Program(name=name, role=role,
                                instructions=tuple(instructions),
                                constants=constants))
    return programs


def measured_configuration_cycles(hierarchy, region: Region,
                                  start: float = 0.0) -> float:
    """Issue the configuration loads through the memory system.

    Returns the cycle at which the last control-block word arrived —
    the measured equivalent of the paper's "series of loads to
    consecutive virtual addresses".
    """
    now = start
    for offset in range(0, region.size, 8):
        result = hierarchy.load(region.base + offset, now)
        now = result.complete
    return now - start
