"""Per-request walker-trail capture.

A *trail* is the traversal path one walker invocation took through the
index: every ``LD`` hop's address and the cache level that serviced it
(:class:`~repro.mem.hierarchy.AccessResult` already attributes each
access to L1/LLC/DRAM), bracketed by the invocation's start and end
cycles.  PULSE-style adaptive placement (see PAPERS.md) needs exactly
this provenance — *where* in the hierarchy each probe's pointer chase
spent its time — and the live service surfaces it per request through
its debug endpoint.

Capture is opt-in and mirrors the tracer pattern: units hold
``trail = None`` by default and guard every site with one ``is not
None`` test, so a trail-free run pays a single branch per load.  The
storage itself is the bounded :class:`~repro.obs.metrics.Trail` ring,
so a trail-enabled run cannot grow without bound either.

The recorder (not the :class:`~repro.obs.metrics.Trail` metric) owns
the *open* invocations: walkers interleave on one engine, so each
walker's in-flight hops accumulate under its own name and only a
committed invocation reaches the ring.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..obs import Trail


class TrailRecorder:
    """Accumulates per-walker open trails and commits them to a ring.

    One recorder serves every walker of a machine: ``start`` opens an
    entry when a walker dequeues a key, ``hop`` appends one memory hop
    (bounded by the ring's ``max_hops``; overflow is counted, not
    stored), and ``commit`` moves the finished entry into the
    :class:`~repro.obs.metrics.Trail`.  Hops arriving for a walker with
    no open entry (an autonomous unit, or a hop after an abort) are
    ignored — the recorder never raises on the hot path.
    """

    __slots__ = ("trail", "_open")

    def __init__(self, trail: Trail) -> None:
        self.trail = trail
        # walker name -> [key, start, hops, dropped_hops]
        self._open: Dict[str, list] = {}

    def start(self, walker: str, key: Sequence[int], ts: float) -> None:
        """Open an entry: ``walker`` begins traversing for ``key``."""
        self._open[walker] = [key, ts, [], 0]

    def hop(self, walker: str, addr: int, level: str, ts: float) -> None:
        """Append one memory hop to the walker's open entry."""
        entry = self._open.get(walker)
        if entry is None:
            return
        hops: List[Tuple[float, int, str]] = entry[2]
        if len(hops) >= self.trail.max_hops:
            entry[3] += 1
            return
        hops.append((ts, addr, level))

    def commit(self, walker: str, ts: float) -> None:
        """Close the walker's open entry into the ring."""
        entry = self._open.pop(walker, None)
        if entry is None:
            return
        key, start, hops, dropped = entry
        self.trail.record(walker, key, start, ts, hops, dropped)

    def abort_all(self, ts: float) -> None:
        """Commit every open entry as-is (an aborted offload unwinds
        units mid-invocation; partial trails still carry provenance)."""
        for walker in sorted(self._open):
            self.commit(walker, ts)

    @property
    def open_walkers(self) -> List[str]:
        """Walkers with an uncommitted entry (sorted, for diagnostics)."""
        return sorted(self._open)
