"""Memoized decode of Widx programs into flat interpreter operations.

The interpreter in :mod:`repro.widx.unit` executes the same short program
once per probe — hundreds of thousands of invocations per measurement —
so per-step costs that look trivial (enum identity chains, dataclass
attribute loads, ``Register.index`` dereferences, re-normalizing the same
immediate) dominate the walker step loop.  Decoding happens once per
:class:`~repro.widx.program.Program` instead: every instruction becomes a
flat tuple of plain ints with all operand resolution pre-computed, and
the decoded form is memoized for the program's lifetime.

Decoded operation layout (indices are fixed; the interpreter indexes
positionally)::

    (kind, rd, ra, rb, imm, bconst, width, target, sources)

* ``kind`` — one of the ``K_*`` ints below (dispatch without enums);
* ``rd``/``ra`` — register indexes (0 when absent: r0 reads zero and
  writes to r0 are dropped, exactly the architectural rule);
* ``rb`` — register index, or ``-1`` when the instruction has no rb
  operand (the ALU b-operand then falls back to ``bconst``);
* ``imm`` — raw immediate: address offset for LD/ST/TOUCH, shift
  distance for SHL/SHR and the fused shift-ops;
* ``bconst`` — the pre-masked immediate b-operand ``imm & (2**64-1)``
  (0 when the instruction has no immediate), mirroring the operand rule
  of the original interpreter exactly;
* ``width`` — access width in bytes for memory operations;
* ``target`` — resolved branch target pc;
* ``sources`` — tuple of register indexes EMIT pushes.

Memoization is keyed by program identity with a weak reference guarding
against ``id()`` reuse, so decoding never leaks programs and a given
program is decoded exactly once per process.
"""

from __future__ import annotations

import weakref
from typing import Dict, Tuple

from ..errors import WidxFault
from .isa import Instruction, Opcode
from .program import Program

_M64 = (1 << 64) - 1

# Interpreter dispatch kinds.  The ALU kinds are contiguous and start at
# K_ALU_FIRST so the interpreter can route "any ALU op" with one compare.
K_LD = 0
K_ST = 1
K_TOUCH = 2
K_EMIT = 3
K_BA = 4
K_BLE = 5
K_HALT = 6
K_ADD = 7
K_AND = 8
K_XOR = 9
K_CMP = 10
K_CMP_LE = 11
K_SHL = 12
K_SHR = 13
K_ADD_SHF = 14
K_AND_SHF = 15
K_XOR_SHF = 16

K_ALU_FIRST = K_ADD

_KIND_OF = {
    Opcode.LD: K_LD,
    Opcode.ST: K_ST,
    Opcode.TOUCH: K_TOUCH,
    Opcode.EMIT: K_EMIT,
    Opcode.BA: K_BA,
    Opcode.BLE: K_BLE,
    Opcode.HALT: K_HALT,
    Opcode.ADD: K_ADD,
    Opcode.AND: K_AND,
    Opcode.XOR: K_XOR,
    Opcode.CMP: K_CMP,
    Opcode.CMP_LE: K_CMP_LE,
    Opcode.SHL: K_SHL,
    Opcode.SHR: K_SHR,
    Opcode.ADD_SHF: K_ADD_SHF,
    Opcode.AND_SHF: K_AND_SHF,
    Opcode.XOR_SHF: K_XOR_SHF,
}

DecodedOp = Tuple[int, int, int, int, int, int, int, int, Tuple[int, ...]]

#: id(program) -> (weakref guarding id reuse, decoded operations).
_CACHE: Dict[int, Tuple[weakref.ref, Tuple[DecodedOp, ...]]] = {}


def decode_instruction(ins: Instruction) -> DecodedOp:
    """Decode one instruction into the flat interpreter tuple."""
    kind = _KIND_OF.get(ins.opcode)
    if kind is None:
        raise WidxFault(f"unhandled opcode {ins.opcode}")
    rd = ins.rd.index if ins.rd is not None else 0
    ra = ins.ra.index if ins.ra is not None else 0
    rb = ins.rb.index if ins.rb is not None else -1
    imm = ins.imm if ins.imm is not None else 0
    bconst = (ins.imm & _M64) if ins.imm is not None else 0
    target = ins.target if ins.target is not None else 0
    sources = tuple(r.index for r in ins.sources)
    return (kind, rd, ra, rb, imm, bconst, ins.width, target, sources)


def decoded_program(program: Program) -> Tuple[DecodedOp, ...]:
    """The memoized decoded form of ``program`` (decoded once, ever)."""
    key = id(program)
    cached = _CACHE.get(key)
    if cached is not None:
        ref, ops = cached
        if ref() is program:
            return ops
    ops = tuple(decode_instruction(ins) for ins in program.instructions)

    def _drop(_ref, _key=key) -> None:
        _CACHE.pop(_key, None)

    _CACHE[key] = (weakref.ref(program, _drop), ops)
    return ops


def decode_cache_size() -> int:
    """Live entries in the decode cache (for tests and diagnostics)."""
    return len(_CACHE)
