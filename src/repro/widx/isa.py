"""The Widx ISA (Table 1 of the paper).

The computational ISA is exactly the paper's Table 1: RISC essentials plus
fused shift-ops (ADD-SHF / AND-SHF / XOR-SHF) that accelerate hashing, and
TOUCH, a non-binding prefetch.  The columns of Table 1 (which unit types
may use which instruction) are encoded in :data:`UNIT_USAGE` and enforced
by the assembler.

Two modelling additions, documented here because they are *not* Table 1
rows but are implied by the paper's microarchitecture:

* ``EMIT`` — writes designated registers to the unit's output queue
  (Figure 6's inter-unit queues; the RTL exposes them as a datapath port,
  not as a memory-mapped instruction).  Blocks while the queue is full.
* ``HALT`` — ends the current invocation (function return in the paper's
  programming API).

Conventions:

* 32 64-bit software-exposed registers, ``r0`` hardwired to zero (the
  paper notes the large register file exists to hold hashing constants —
  constants are preloaded from the Widx control block at configuration).
* ``BLE ra, rb, label`` branches when ``ra <= rb`` (unsigned); with
  ``r0`` this provides branch-if-zero.
* ``CMP rd, ra, rb`` sets ``rd`` to 1 on equality, else 0; ``CMP-LE``
  sets ``rd`` to 1 when ``ra <= rb``.
* Fused shift-ops compute ``rd = ra OP (rb << s)``; a negative ``s``
  encodes a right shift (one datapath shifter handles both directions).
* Loads/stores carry an access width (4 or 8 bytes) — schema data types
  vary, which is exactly why Widx is programmable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..errors import AssemblerError

NUM_REGISTERS = 32


class Opcode(enum.Enum):
    """Table 1 instructions plus the EMIT/HALT modelling additions."""

    ADD = "add"
    AND = "and"
    BA = "ba"
    BLE = "ble"
    CMP = "cmp"
    CMP_LE = "cmp-le"
    LD = "ld"
    SHL = "shl"
    SHR = "shr"
    ST = "st"
    TOUCH = "touch"
    XOR = "xor"
    ADD_SHF = "add-shf"
    AND_SHF = "and-shf"
    XOR_SHF = "xor-shf"
    EMIT = "emit"    # modelling addition: queue write port
    HALT = "halt"    # modelling addition: end of invocation


#: Table 1's unit-usage columns: which unit roles may execute each opcode.
#: H = dispatcher (hashing), W = walker, P = output producer.
UNIT_USAGE: Dict[Opcode, FrozenSet[str]] = {
    Opcode.ADD: frozenset("HWP"),
    Opcode.AND: frozenset("HWP"),
    Opcode.BA: frozenset("HWP"),
    Opcode.BLE: frozenset("HWP"),
    Opcode.CMP: frozenset("HWP"),
    Opcode.CMP_LE: frozenset("HWP"),
    Opcode.LD: frozenset("HWP"),
    Opcode.SHL: frozenset("HWP"),
    Opcode.SHR: frozenset("HWP"),
    Opcode.ST: frozenset("P"),
    Opcode.TOUCH: frozenset("HWP"),
    Opcode.XOR: frozenset("HWP"),
    Opcode.ADD_SHF: frozenset("HW"),
    Opcode.AND_SHF: frozenset("H"),
    Opcode.XOR_SHF: frozenset("HW"),
    Opcode.EMIT: frozenset("HW"),
    Opcode.HALT: frozenset("HWP"),
}


@dataclass(frozen=True)
class Register:
    """An architectural register r0..r31 (r0 reads as zero)."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_REGISTERS:
            raise AssemblerError(
                f"register r{self.index} outside the {NUM_REGISTERS}-register "
                f"budget (the Widx architecture has no push/pop)")

    def __str__(self) -> str:
        return f"r{self.index}"


R0 = Register(0)


@dataclass(frozen=True)
class Instruction:
    """One decoded Widx instruction.

    Field usage by opcode family:

    * ALU (``ADD/AND/XOR/CMP/CMP_LE``): ``rd, ra`` and ``rb`` *or* ``imm``.
    * Shifts (``SHL/SHR``): ``rd, ra, imm`` (shift distance).
    * Fused (``*_SHF``): ``rd, ra, rb, imm`` — ``rd = ra OP (rb << imm)``,
      negative ``imm`` shifts right.
    * ``LD``: ``rd, ra, imm`` (address ``ra+imm``), ``width`` bytes.
    * ``ST``: ``ra, imm`` address, ``rb`` data, ``width`` bytes.
    * ``TOUCH``: ``ra, imm`` address.
    * ``BA``: ``target``; ``BLE``: ``ra, rb, target``.
    * ``EMIT``: ``sources`` (1-4 registers pushed to the output queue).
    """

    opcode: Opcode
    rd: Optional[Register] = None
    ra: Optional[Register] = None
    rb: Optional[Register] = None
    imm: Optional[int] = None
    width: int = 8
    target: Optional[int] = None        # resolved branch target (pc index)
    label: Optional[str] = None         # unresolved branch target name
    sources: Tuple[Register, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.width not in (4, 8):
            raise AssemblerError(f"unsupported access width {self.width}")
        if self.opcode in (Opcode.SHL, Opcode.SHR):
            if self.imm is None or not 0 <= self.imm < 64:
                raise AssemblerError("shift distance must be in [0, 64)")
        if self.opcode in (Opcode.ADD_SHF, Opcode.AND_SHF, Opcode.XOR_SHF):
            if self.imm is None or not -63 <= self.imm <= 63:
                raise AssemblerError("fused shift distance must be in [-63, 63]")
        if self.opcode is Opcode.EMIT and not 1 <= len(self.sources) <= 4:
            raise AssemblerError("EMIT pushes between 1 and 4 registers")

    @property
    def is_branch(self) -> bool:
        return self.opcode in (Opcode.BA, Opcode.BLE)

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LD, Opcode.ST, Opcode.TOUCH)

    def registers_used(self) -> Tuple[Register, ...]:
        """Every register this instruction names."""
        regs = [r for r in (self.rd, self.ra, self.rb) if r is not None]
        regs.extend(self.sources)
        return tuple(regs)
