"""Reference Widx unit interpreter for differential testing.

:class:`ReferenceWidxUnit` executes programs with the straightforward
pre-overhaul interpreter: it walks the :class:`~repro.widx.isa.Instruction`
dataclasses directly, dispatches on opcode enum identity, dereferences
``Register.index`` on every operand, re-masks immediates on every
execution, and bumps the instruction counter through ``Counter.__iadd__``
once per instruction — none of the memoized decode in
:mod:`repro.widx.decode`.  Timing, stats, and architectural semantics are
identical to :class:`~repro.widx.unit.WidxUnit`; only the interpretation
strategy differs.  The differential and golden tests prove the two produce
bit-identical runs; the benchmarks in :mod:`repro.bench` use this unit
(with the naive reference engine and cache) as the full-stack baseline.

Do not "improve" this class: its value is being obviously correct,
not fast.
"""

from __future__ import annotations

from typing import Generator

from ..errors import WidxFault
from .isa import Opcode
from .unit import WidxUnit, _M64


class ReferenceWidxUnit(WidxUnit):
    """WidxUnit with the naive instruction-by-instruction interpreter."""

    def _invoke(self) -> Generator:
        regs = self.regs
        instructions = self.program.instructions
        stats = self.stats
        cycles = stats.cycles
        pc = 0
        pending = 1.0  # one cycle to dequeue/start the invocation
        program_len = len(instructions)

        while pc < program_len:
            ins = instructions[pc]
            op = ins.opcode
            stats.instructions += 1

            if op is Opcode.LD:
                if pending:
                    yield pending
                    cycles.comp += pending
                    pending = 0.0
                addr = (regs[ins.ra.index] + ins.imm) & _M64
                now = self.engine.now
                result = self.hierarchy.load(addr, now)
                value = self.physmem.read(addr, ins.width)
                wait = result.complete - now
                cycles.comp += 1.0
                stall = max(0.0, wait - 1.0)
                tlb_part = min(result.tlb_stall, stall)
                cycles.tlb += tlb_part
                cycles.mem += stall - tlb_part
                if wait > 0:
                    yield wait
                if ins.rd.index != 0:
                    regs[ins.rd.index] = value
                stats.loads += 1
                pc += 1

            elif op is Opcode.ST:
                addr = (regs[ins.ra.index] + ins.imm) & _M64
                self.physmem.write(addr, ins.width, regs[ins.rb.index])
                self.hierarchy.store(addr, self.engine.now + pending)
                stats.stores += 1
                pending += 1.0
                pc += 1

            elif op is Opcode.TOUCH:
                addr = (regs[ins.ra.index] + ins.imm) & _M64
                self.hierarchy.touch(addr, self.engine.now + pending)
                stats.touches += 1
                pending += 1.0
                pc += 1

            elif op is Opcode.EMIT:
                if self.out_queue is None:
                    raise WidxFault(f"{self.name}: EMIT with no output queue")
                if pending:
                    yield pending
                    cycles.comp += pending
                    pending = 0.0
                values = tuple(regs[r.index] for r in ins.sources)
                waited_from = self.engine.now
                yield self.out_queue.put(values)
                cycles.queue += self.engine.now - waited_from
                pending = 1.0
                stats.emitted += 1
                pc += 1

            elif op is Opcode.BA:
                # Branch address calculation resolves in the first pipeline
                # stage, so taken branches do not bubble (Section 4.1).
                pending += 1.0
                pc = ins.target

            elif op is Opcode.BLE:
                pending += 1.0
                if regs[ins.ra.index] <= regs[ins.rb.index]:
                    pc = ins.target
                else:
                    pc += 1

            elif op is Opcode.HALT:
                break  # fall-through return; the next dequeue pays the cycle

            else:
                self._alu(ins, regs)
                pending += 1.0
                pc += 1

        if pending:
            yield pending
            cycles.comp += pending
