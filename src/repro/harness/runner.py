"""Shared measurement machinery for the per-figure drivers.

Building a scaled index takes seconds and several figures reuse the same
measurements (Figure 10's speedups come from Figure 9's runs; Figure 11
aggregates both), so measurements are memoized in a process-wide
:class:`MeasurementCache`.  The cache can additionally be backed by a
persistent :class:`~repro.harness.cachestore.CacheStore`: on an in-memory
miss the store is consulted first, and freshly measured points are written
back, so repeated or resumed campaigns are near-instant.

Cache keys are content hashes over the full :class:`SystemConfig`, the
:class:`RunSettings` and the measurement point (see :func:`measurement_key`)
— never positional, so a store directory can be shared across
configurations, seeds and probe volumes without collisions.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..config import SystemConfig, DEFAULT_CONFIG, stable_digest
from ..cpu.ordered import measure_ordered_indexing
from ..cpu.timing import CoreTimingResult, measure_indexing
from ..errors import (ConfigError, InvariantViolation, MeasurementFailed,
                      SimulationHang)
from ..mem.layout import AddressSpace
from ..obs import StatsRegistry
from ..serve.service import ServiceMeasurement, measure_service
from ..sim.watchdog import Watchdog, WatchdogLimits
from ..widx.offload import (OffloadOutcome, offload_batched_tree,
                            offload_probe, offload_tree_search,
                            offload_trie_search, offload_wormhole_search)
from ..widx.unit import UnitCycleBreakdown
from ..workloads.hashjoin_kernel import build_kernel_workload
from ..workloads.ordered_kernel import build_ordered_workload
from ..workloads.queryspec import QuerySpec, build_query_index
from .cachestore import (CacheDecodeError, CacheStore, decode_measurement,
                         encode_measurement)


@dataclass(frozen=True)
class RunSettings:
    """Probe-volume settings shared by an experiment campaign."""

    probes: int = 3_000
    warmup: int = 600
    seed: int = 42

    def __post_init__(self) -> None:
        # Mirrors the CLI's --probes/--warmup guard: direct constructors
        # must not be able to produce a zero/negative measured count.
        if self.probes <= 0:
            raise ConfigError(f"probes must be positive, got {self.probes}")
        if self.warmup < 0:
            raise ConfigError(f"warmup must be >= 0, got {self.warmup}")
        if self.warmup >= self.probes:
            raise ConfigError(
                f"probes ({self.probes}) must exceed warmup ({self.warmup}); "
                f"nothing would be measured")

    @property
    def measured(self) -> int:
        return self.probes - self.warmup


DEFAULT_RUNS = RunSettings()

#: A lighter setting for unit tests and quick sanity runs.
QUICK_RUNS = RunSettings(probes=1_200, warmup=300)


def measurement_key(config: SystemConfig, runs: RunSettings,
                    point: Tuple) -> str:
    """Stable content hash identifying one measurement.

    ``point`` is the in-memory cache tuple, e.g. ``("baseline", "kernel",
    "Small", "ooo")`` or ``("widx", "query", "tpch:20", 4, "shared")``.
    The hash covers the complete system configuration and run settings, so
    any parameter change re-measures instead of aliasing.
    """
    return stable_digest({
        "config": config.canonical_dict(),
        "runs": asdict(runs),
        "point": list(point),
    })


@dataclass
class WorkloadMeasurement:
    """Everything measured for one workload (kernel size or query)."""

    name: str
    ooo: Optional[CoreTimingResult] = None
    inorder: Optional[CoreTimingResult] = None
    widx: Dict[int, OffloadOutcome] = field(default_factory=dict)

    def speedup(self, walkers: int) -> float:
        """Widx indexing speedup over the OoO baseline."""
        if self.ooo is None or walkers not in self.widx:
            raise KeyError(f"{self.name}: missing measurement for {walkers} walkers")
        return self.ooo.cycles_per_tuple / self.widx[walkers].cycles_per_tuple

    def walker_breakdown(self, walkers: int) -> UnitCycleBreakdown:
        """Per-tuple walker cycle breakdown at a walker count."""
        return self.widx[walkers].run.walker_cycles_per_tuple()


class MeasurementCache:
    """Memoizes workload builds and measurements across figure drivers.

    With a ``store``, the memory cache is write-through: misses consult the
    store before simulating, and fresh measurements are persisted.  A
    corrupt or stale store entry is silently discarded and re-measured; a
    transient store IO error (flaky NFS, disk pressure) is swallowed and
    counted rather than crashing a campaign — the store is an
    optimization, never a point of failure.

    ``watchdog_limits`` budgets each simulated measurement (livelock,
    cycle and wall-clock ceilings; see
    :class:`~repro.sim.watchdog.WatchdogLimits`).  Budgets are *not* part
    of the cache key: they bound how long a measurement may take, not what
    it computes.

    Points that exhausted their campaign retries are *poisoned* via
    :meth:`poison`: asking for one raises
    :class:`~repro.errors.MeasurementFailed` immediately, so a figure
    driver reports the failure instead of silently re-simulating (or
    re-hanging) in-process.
    """

    def __init__(self, config: SystemConfig = DEFAULT_CONFIG,
                 runs: RunSettings = DEFAULT_RUNS,
                 store: Optional[CacheStore] = None,
                 watchdog_limits: Optional[WatchdogLimits] = None,
                 bulk: bool = False) -> None:
        self.config = config
        self.runs = runs
        self.store = store
        self.watchdog_limits = watchdog_limits
        # Bulk mode changes how baseline points are *computed*, never
        # what they compute (bit-identical by contract) — so it is
        # deliberately absent from measurement_key(): bulk and DES runs
        # share cache entries.
        self.bulk = bulk
        self._kernel_workloads: Dict[str, tuple] = {}
        self._query_workloads: Dict[str, tuple] = {}
        self._ordered_workloads: Dict[str, tuple] = {}
        self._measurements: Dict[Tuple, object] = {}
        self._poisoned: Dict[Tuple, str] = {}
        self.measured_points = 0   # simulated in this process
        self.store_hits = 0        # loaded from the persistent store
        self.store_errors = 0      # transient store IO errors survived

    # --- workload construction (cached) --------------------------------

    def kernel_workload(self, size: str):
        """Build (or reuse) one kernel size's index + probes."""
        if size not in self._kernel_workloads:
            self._kernel_workloads[size] = build_kernel_workload(
                size, self.runs.probes, seed=self.runs.seed)
        return self._kernel_workloads[size]

    def query_workload(self, spec: QuerySpec):
        """Build (or reuse) one DSS query's index + probes."""
        key = f"{spec.benchmark}:{spec.number}"
        if key not in self._query_workloads:
            self._query_workloads[key] = build_query_index(
                spec, probe_count=self.runs.probes, seed=self.runs.seed)
        return self._query_workloads[key]

    def ordered_workload(self, name: str):
        """Build (or reuse) one ordered-index workload.

        ``name`` is ``"<class>:<size>"``, e.g. ``"trie:Small"``.  The
        ``btree`` and ``batched`` classes build structurally identical
        trees but are memoized separately: each measurement must see the
        address layout a fresh build produces (hermeticity), not one
        shifted by another class's earlier allocations.
        """
        if name not in self._ordered_workloads:
            index_class, _, size = name.partition(":")
            self._ordered_workloads[name] = build_ordered_workload(
                index_class, size, self.runs.probes, seed=self.runs.seed)
        return self._ordered_workloads[name]

    # --- cache plumbing -------------------------------------------------

    def point_key(self, point: Tuple) -> str:
        """The persistent-store key for one in-memory cache tuple."""
        return measurement_key(self.config, self.runs, point)

    def fetch(self, point: Tuple):
        """A cached result (memory, then store), or ``None``."""
        if point in self._measurements:
            return self._measurements[point]
        if self.store is not None:
            try:
                payload = self.store.get(self.point_key(point))
            except OSError:
                self.store_errors += 1
                return None  # transient store trouble == cache miss
            if payload is not None:
                try:
                    result = decode_measurement(payload)
                except CacheDecodeError:
                    return None  # treat like corruption: re-measure
                self._measurements[point] = result
                self.store_hits += 1
                return result
        return None

    def install(self, point: Tuple, result: object,
                persist: bool = True) -> None:
        """Adopt a result (measured here or by a campaign worker)."""
        self._measurements[point] = result
        if persist and self.store is not None:
            try:
                self.store.put(self.point_key(point), encode_measurement(result))
            except OSError:
                self.store_errors += 1  # keep the in-memory copy; move on

    # --- poisoning ------------------------------------------------------

    def poison(self, point: Tuple, reason: str) -> None:
        """Mark a point as failed-beyond-retry; measuring it raises."""
        self._poisoned[point] = reason

    def clear_poison(self, point: Tuple) -> None:
        """Give a failed point another chance (a new campaign starts)."""
        self._poisoned.pop(point, None)

    @property
    def poisoned(self) -> Dict[Tuple, str]:
        return dict(self._poisoned)

    def _check_poisoned(self, point: Tuple) -> None:
        reason = self._poisoned.get(point)
        if reason is not None:
            raise MeasurementFailed(
                f"measurement {point!r} failed its campaign retries and is "
                f"poisoned: {reason}")

    def _watchdog(self) -> Optional[Watchdog]:
        if self.watchdog_limits is None:
            return None
        return Watchdog(self.watchdog_limits)

    # --- measurements (cached) ------------------------------------------

    def baseline(self, kind: str, name: str, core: str) -> CoreTimingResult:
        """Measure (or reuse) a baseline core on one workload."""
        point = ("baseline", kind, name, core)
        result = self.fetch(point)
        if result is None:
            self._check_poisoned(point)
            index, probes = (self.kernel_workload(name) if kind == "kernel"
                             else self.query_workload(self._spec_by_name(name)))
            result = measure_indexing(
                index, probes, core=core, config=self.config,
                warmup_probes=self.runs.warmup,
                measure_probes=self.runs.measured,
                bulk=self.bulk)
            self.measured_points += 1
            self.install(point, result)
        return result  # type: ignore[return-value]

    def widx(self, kind: str, name: str, walkers: int,
             mode: str = "shared") -> OffloadOutcome:
        """Measure (or reuse) a Widx offload on one workload."""
        point = ("widx", kind, name, walkers, mode)
        result = self.fetch(point)
        if result is None:
            self._check_poisoned(point)
            index, probes = (self.kernel_workload(name) if kind == "kernel"
                             else self.query_workload(self._spec_by_name(name)))
            config = self.config.with_widx(num_walkers=walkers, mode=mode)
            try:
                result = offload_probe(
                    index, probes, config=config, probes=self.runs.probes,
                    watchdog=self._watchdog())
            except (SimulationHang, InvariantViolation) as exc:
                if hasattr(exc, "add_note"):
                    exc.add_note(f"while measuring point {point!r}")
                raise
            self.measured_points += 1
            self.install(point, result)
        return result  # type: ignore[return-value]

    def pim(self, kind: str, name: str, walkers: int, banks: int,
            mode: str = "shared") -> OffloadOutcome:
        """Measure (or reuse) a near-memory (bank-side walker) offload."""
        point = ("pim", kind, name, walkers, mode, banks)
        result = self.fetch(point)
        if result is None:
            self._check_poisoned(point)
            index, probes = (self.kernel_workload(name) if kind == "kernel"
                             else self.query_workload(self._spec_by_name(name)))
            config = self.config.with_widx(
                num_walkers=walkers, mode=mode,
                placement="pim").with_pim(num_banks=banks)
            try:
                result = offload_probe(
                    index, probes, config=config, probes=self.runs.probes,
                    watchdog=self._watchdog())
            except (SimulationHang, InvariantViolation) as exc:
                if hasattr(exc, "add_note"):
                    exc.add_note(f"while measuring point {point!r}")
                raise
            self.measured_points += 1
            self.install(point, result)
        return result  # type: ignore[return-value]

    def index(self, name: str, core: str, walkers: int = 0,
              mode: str = "") -> object:
        """Measure (or reuse) one ordered-index zoo point.

        ``name`` is ``"<class>:<size>"``.  ``core`` selects a baseline
        core model (``"ooo"``/``"inorder"``, returning a
        :class:`CoreTimingResult`) or ``"widx"`` (returning an
        :class:`OffloadOutcome` from the class's offload driver).
        """
        point = ("index", "ordered", name, core, walkers, mode)
        result = self.fetch(point)
        if result is None:
            self._check_poisoned(point)
            index_class, _, _size = name.partition(":")
            index, probes = self.ordered_workload(name)
            if core in ("ooo", "inorder"):
                result = measure_ordered_indexing(
                    index, probes, index_class=index_class, core=core,
                    config=self.config, warmup_probes=self.runs.warmup,
                    measure_probes=self.runs.measured, bulk=self.bulk)
            elif core == "widx":
                config = self.config.with_widx(
                    num_walkers=walkers, mode=mode or "shared")
                offload = {"btree": offload_tree_search,
                           "trie": offload_trie_search,
                           "wormhole": offload_wormhole_search,
                           "batched": offload_batched_tree}[index_class]
                try:
                    result = offload(index, probes, config=config,
                                     probes=self.runs.probes)
                except (SimulationHang, InvariantViolation) as exc:
                    if hasattr(exc, "add_note"):
                        exc.add_note(f"while measuring point {point!r}")
                    raise
            else:
                raise ConfigError(
                    f"unknown ordered-index core {core!r} "
                    f"(want 'ooo', 'inorder' or 'widx')")
            self.measured_points += 1
            self.install(point, result)
        return result

    def service(self, kind: str, name: str, backend: str, batch_keys: int,
                walkers: int = 0, mode: str = "") -> ServiceMeasurement:
        """Measure (or reuse) one serving-layer service-time calibration:
        the cycles ``backend`` spends serving a ``batch_keys``-key probe
        batch on one workload (see :mod:`repro.serve.service`)."""
        point = ("serve", kind, name, backend, walkers, mode, batch_keys)
        result = self.fetch(point)
        if result is None:
            self._check_poisoned(point)
            if kind == "kernel":
                index, probes = self.kernel_workload(name)
            elif kind == "ordered":
                index, probes = self.ordered_workload(name)
            else:
                index, probes = self.query_workload(self._spec_by_name(name))
            try:
                result = measure_service(
                    index, probes, backend=backend, batch_keys=batch_keys,
                    config=self.config, walkers=walkers, mode=mode,
                    watchdog=self._watchdog())
            except (SimulationHang, InvariantViolation) as exc:
                if hasattr(exc, "add_note"):
                    exc.add_note(f"while measuring point {point!r}")
                raise
            result.kind = kind
            result.name = name
            self.measured_points += 1
            self.install(point, result)
        return result  # type: ignore[return-value]

    def merged_stats(self) -> StatsRegistry:
        """One registry merging every cached measurement's stats snapshot.

        Each measurement carries the :meth:`~repro.obs.StatsRegistry.to_dict`
        snapshot of the simulation that produced it, whether it was measured
        in this process, by a campaign worker, or loaded from the persistent
        store — so serial, parallel and cache-hit campaigns all merge to the
        same totals.  Points are merged in a deterministic order.
        """
        registry = StatsRegistry()
        for point in sorted(self._measurements, key=repr):
            snapshot = getattr(self._measurements[point], "stats", None)
            if snapshot:
                registry.merge(snapshot)
        return registry

    def _spec_by_name(self, name: str) -> QuerySpec:
        from ..workloads.tpch import TPCH_QUERIES
        from ..workloads.tpcds import TPCDS_QUERIES
        for spec in TPCH_QUERIES + TPCDS_QUERIES:
            if f"{spec.benchmark}:{spec.number}" == name:
                return spec
        raise KeyError(f"unknown query {name!r}")


def measure_kernel(cache: MeasurementCache, size: str,
                   walker_counts: Iterable[int] = (1, 2, 4),
                   ) -> WorkloadMeasurement:
    """Measure one kernel size on the OoO baseline and Widx configs."""
    result = WorkloadMeasurement(name=size)
    result.ooo = cache.baseline("kernel", size, "ooo")
    for walkers in walker_counts:
        result.widx[walkers] = cache.widx("kernel", size, walkers)
    return result


def measure_query(cache: MeasurementCache, spec: QuerySpec,
                  walker_counts: Iterable[int] = (1, 2, 4),
                  include_inorder: bool = False) -> WorkloadMeasurement:
    """Measure one DSS query on the baselines and Widx configs."""
    name = f"{spec.benchmark}:{spec.number}"
    result = WorkloadMeasurement(name=spec.label)
    result.ooo = cache.baseline("query", name, "ooo")
    if include_inorder:
        result.inorder = cache.baseline("query", name, "inorder")
    for walkers in walker_counts:
        result.widx[walkers] = cache.widx("query", name, walkers)
    return result


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (raises on an empty sequence or non-positive value)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of nothing")
    total = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(
                f"geomean requires positive values, got {value!r}")
        total += math.log(value)
    return math.exp(total / len(values))
