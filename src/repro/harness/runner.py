"""Shared measurement machinery for the per-figure drivers.

Building a scaled index takes seconds and several figures reuse the same
measurements (Figure 10's speedups come from Figure 9's runs; Figure 11
aggregates both), so measurements are memoized in a process-wide
:class:`MeasurementCache`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..config import SystemConfig, DEFAULT_CONFIG
from ..cpu.timing import CoreTimingResult, measure_indexing
from ..mem.layout import AddressSpace
from ..widx.offload import OffloadOutcome, offload_probe
from ..widx.unit import UnitCycleBreakdown
from ..workloads.hashjoin_kernel import build_kernel_workload
from ..workloads.queryspec import QuerySpec, build_query_index


@dataclass(frozen=True)
class RunSettings:
    """Probe-volume settings shared by an experiment campaign."""

    probes: int = 3_000
    warmup: int = 600
    seed: int = 42

    @property
    def measured(self) -> int:
        return self.probes - self.warmup


DEFAULT_RUNS = RunSettings()

#: A lighter setting for unit tests and quick sanity runs.
QUICK_RUNS = RunSettings(probes=1_200, warmup=300)


@dataclass
class WorkloadMeasurement:
    """Everything measured for one workload (kernel size or query)."""

    name: str
    ooo: Optional[CoreTimingResult] = None
    inorder: Optional[CoreTimingResult] = None
    widx: Dict[int, OffloadOutcome] = field(default_factory=dict)

    def speedup(self, walkers: int) -> float:
        """Widx indexing speedup over the OoO baseline."""
        if self.ooo is None or walkers not in self.widx:
            raise KeyError(f"{self.name}: missing measurement for {walkers} walkers")
        return self.ooo.cycles_per_tuple / self.widx[walkers].cycles_per_tuple

    def walker_breakdown(self, walkers: int) -> UnitCycleBreakdown:
        """Per-tuple walker cycle breakdown at a walker count."""
        return self.widx[walkers].run.walker_cycles_per_tuple()


class MeasurementCache:
    """Memoizes workload builds and measurements across figure drivers."""

    def __init__(self, config: SystemConfig = DEFAULT_CONFIG,
                 runs: RunSettings = DEFAULT_RUNS) -> None:
        self.config = config
        self.runs = runs
        self._kernel_workloads: Dict[str, tuple] = {}
        self._query_workloads: Dict[str, tuple] = {}
        self._measurements: Dict[Tuple, object] = {}

    # --- workload construction (cached) --------------------------------

    def kernel_workload(self, size: str):
        """Build (or reuse) one kernel size's index + probes."""
        if size not in self._kernel_workloads:
            self._kernel_workloads[size] = build_kernel_workload(
                size, self.runs.probes, seed=self.runs.seed)
        return self._kernel_workloads[size]

    def query_workload(self, spec: QuerySpec):
        """Build (or reuse) one DSS query's index + probes."""
        key = f"{spec.benchmark}:{spec.number}"
        if key not in self._query_workloads:
            self._query_workloads[key] = build_query_index(
                spec, probe_count=self.runs.probes, seed=self.runs.seed)
        return self._query_workloads[key]

    # --- measurements (cached) ------------------------------------------

    def baseline(self, kind: str, name: str, core: str) -> CoreTimingResult:
        """Measure (or reuse) a baseline core on one workload."""
        key = ("baseline", kind, name, core)
        if key not in self._measurements:
            index, probes = (self.kernel_workload(name) if kind == "kernel"
                             else self.query_workload(self._spec_by_name(name)))
            self._measurements[key] = measure_indexing(
                index, probes, core=core, config=self.config,
                warmup_probes=self.runs.warmup,
                measure_probes=self.runs.measured)
        return self._measurements[key]  # type: ignore[return-value]

    def widx(self, kind: str, name: str, walkers: int,
             mode: str = "shared") -> OffloadOutcome:
        """Measure (or reuse) a Widx offload on one workload."""
        key = ("widx", kind, name, walkers, mode)
        if key not in self._measurements:
            index, probes = (self.kernel_workload(name) if kind == "kernel"
                             else self.query_workload(self._spec_by_name(name)))
            config = self.config.with_widx(num_walkers=walkers, mode=mode)
            self._measurements[key] = offload_probe(
                index, probes, config=config, probes=self.runs.probes)
        return self._measurements[key]  # type: ignore[return-value]

    def _spec_by_name(self, name: str) -> QuerySpec:
        from ..workloads.tpch import TPCH_QUERIES
        from ..workloads.tpcds import TPCDS_QUERIES
        for spec in TPCH_QUERIES + TPCDS_QUERIES:
            if f"{spec.benchmark}:{spec.number}" == name:
                return spec
        raise KeyError(f"unknown query {name!r}")


def measure_kernel(cache: MeasurementCache, size: str,
                   walker_counts: Iterable[int] = (1, 2, 4),
                   ) -> WorkloadMeasurement:
    """Measure one kernel size on the OoO baseline and Widx configs."""
    result = WorkloadMeasurement(name=size)
    result.ooo = cache.baseline("kernel", size, "ooo")
    for walkers in walker_counts:
        result.widx[walkers] = cache.widx("kernel", size, walkers)
    return result


def measure_query(cache: MeasurementCache, spec: QuerySpec,
                  walker_counts: Iterable[int] = (1, 2, 4),
                  include_inorder: bool = False) -> WorkloadMeasurement:
    """Measure one DSS query on the baselines and Widx configs."""
    name = f"{spec.benchmark}:{spec.number}"
    result = WorkloadMeasurement(name=spec.label)
    result.ooo = cache.baseline("query", name, "ooo")
    if include_inorder:
        result.inorder = cache.baseline("query", name, "inorder")
    for walkers in walker_counts:
        result.widx[walkers] = cache.widx("query", name, walkers)
    return result


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (raises on an empty sequence)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of nothing")
    return math.exp(sum(math.log(v) for v in values) / len(values))
