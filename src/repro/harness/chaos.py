"""Deterministic fault injection for the campaign layer.

Proving a recovery path works requires *causing* the failure on demand —
and causing it the same way every time, so a recovered bug stays
reproducible.  :class:`ChaosSpec` is a seeded, picklable description of
which faults to inject where:

* **worker kill** — a campaign worker calls ``os._exit`` before measuring
  a point (models an OOM-killed or segfaulted worker process).
* **worker hang** — a worker sleeps past any reasonable deadline before
  measuring (models a wedged simulation; the campaign's per-point
  progress timeout must reap it).
* **measurement error** — the measurement raises :class:`ChaosError`
  (models a deterministic-looking transient failure; injected in both
  worker and serial executors).
* **transient IO error** — a cache-store read raises :class:`OSError`
  (models NFS flakes / disk pressure; the cache treats it as a miss).
* **corrupt entry** — a just-written cache entry is truncated mid-file
  (models a torn write; the store's checksum must reject it on read).

**Determinism.**  Whether a fault fires for a given (site, key) pair is a
pure function of the seed — a content-hash draw compared against the
site's rate — never of wall-clock time, scheduling or iteration order.
The same seed therefore injects the same faults no matter how many
workers run or in what order points complete.  Each (site, key) injects
at most ``max_injections`` times, after which the operation succeeds, so
every injected fault has a bounded recovery path: a campaign with retries
enabled converges to the same results as a fault-free run.
"""

from __future__ import annotations

import os
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..config import stable_digest

#: Exit code a chaos-killed worker dies with (recognizable in crash logs).
CHAOS_KILL_EXIT = 43


class ChaosError(RuntimeError):
    """The error the injector raises for an 'error'-site fault."""


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded description of which faults to inject (picklable, frozen)."""

    seed: int
    kill_rate: float = 0.0        # worker process self-kills
    hang_rate: float = 0.0        # worker sleeps past the progress timeout
    error_rate: float = 0.0       # measurement raises ChaosError
    io_error_rate: float = 0.0    # store.get raises OSError
    corrupt_rate: float = 0.0     # store.put leaves a truncated entry
    max_injections: int = 1       # per (site, key) injection budget
    hang_seconds: float = 120.0   # how long a hung worker sleeps
    target: str = ""              # only fault keys containing this substring

    def __post_init__(self) -> None:
        for name in ("kill_rate", "hang_rate", "error_rate",
                     "io_error_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.max_injections < 0:
            raise ValueError("max_injections must be >= 0")

    def draw(self, site: str, key: str) -> float:
        """Deterministic uniform draw in [0, 1) for one (site, key)."""
        digest = stable_digest({"chaos": self.seed, "site": site, "key": key})
        return int(digest[:13], 16) / 16.0 ** 13

    def wants(self, site: str, key: str, rate: float) -> bool:
        """Whether this (site, key) is selected for injection at ``rate``."""
        if rate <= 0.0:
            return False
        if self.target and self.target not in key:
            return False
        return self.draw(site, key) < rate

    def should_inject(self, site: str, key: str, attempt: int,
                      rate: float) -> bool:
        """Selected *and* within the per-(site, key) injection budget.

        ``attempt`` is how many times this operation has already been
        tried; retries past ``max_injections`` run clean, which is what
        makes every injected fault recoverable.
        """
        return attempt < self.max_injections and self.wants(site, key, rate)


def walker_faults(seed: int, *, walkers: int, rate: float,
                  horizon: float, kind: str = "fail-stop",
                  key: str = ""):
    """Seeded :class:`~repro.widx.machine.UnitFault` schedule for one run.

    Extends the chaos injector *into* the simulation: each walker gets
    one deterministic uniform draw (the ChaosSpec content-hash formula,
    so campaign-level and simulation-level faults share one seeded
    universe) and dies at ``draw * horizon / rate`` cycles when selected
    — ``rate`` is the per-walker selection probability in [0, 1], and
    earlier deaths come from the same draws at higher rates, keeping
    degradation monotone.  Returns a tuple sorted by injection cycle.
    """
    from ..widx.machine import UnitFault

    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    spec = ChaosSpec(seed=seed)
    faults = []
    for walker in range(walkers):
        draw = spec.draw("walker-fault", f"{key}/walker{walker}")
        if draw < rate:
            cycle = draw * horizon / rate
            faults.append(UnitFault(unit=f"walker{walker}", cycle=cycle,
                                    kind=kind))
    return tuple(sorted(faults, key=lambda fault: fault.cycle))


def inject_worker_faults(spec: Optional[ChaosSpec], key: str,
                         attempt: int) -> None:
    """Process-level faults; call at the top of a campaign worker's point
    loop (never from the campaign parent)."""
    if spec is None:
        return
    if spec.should_inject("kill", key, attempt, spec.kill_rate):
        os._exit(CHAOS_KILL_EXIT)
    if spec.should_inject("hang", key, attempt, spec.hang_rate):
        time.sleep(spec.hang_seconds)


def inject_measurement_error(spec: Optional[ChaosSpec], key: str,
                             attempt: int) -> None:
    """Raise :class:`ChaosError` if this measurement is selected."""
    if spec is None:
        return
    if spec.should_inject("error", key, attempt, spec.error_rate):
        raise ChaosError(f"chaos(seed={spec.seed}): injected measurement "
                         f"error for {key} (attempt {attempt})")


class ChaosStore:
    """A :class:`~repro.harness.cachestore.CacheStore` proxy injecting
    storage faults.

    Drop-in for the real store (same ``get``/``put``/``path`` surface);
    injection counting lives here because the store proxy is long-lived in
    the campaign parent, unlike the per-attempt worker helpers.
    """

    def __init__(self, store: Any, spec: ChaosSpec) -> None:
        self.store = store
        self.spec = spec
        self.injected: Counter = Counter()   # site -> injection count

    def _take(self, site: str, key: str, rate: float) -> bool:
        budget_key = (site, key)
        if (self.injected[budget_key] < self.spec.max_injections
                and self.spec.wants(site, key, rate)):
            self.injected[budget_key] += 1
            self.injected[site] += 1
            return True
        return False

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Delegate to the store, possibly raising a transient OSError."""
        if self._take("io-read", key, self.spec.io_error_rate):
            raise OSError(f"chaos(seed={self.spec.seed}): transient read "
                          f"error for {key}")
        return self.store.get(key)

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Write through, then possibly tear the just-written entry."""
        self.store.put(key, payload)
        if self._take("corrupt", key, self.spec.corrupt_rate):
            self._truncate(self.store.path(key))

    @staticmethod
    def _truncate(path: str) -> None:
        """Tear the entry in half, as a crash mid-write would have."""
        try:
            size = os.path.getsize(path)
            with open(path, "r+", encoding="utf-8") as handle:
                handle.truncate(size // 2)
        except OSError:
            pass

    def path(self, key: str) -> str:
        """The file backing one key (delegated)."""
        return self.store.path(key)

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, key: str) -> bool:
        return key in self.store

    def __getattr__(self, name: str) -> Any:
        return getattr(self.store, name)
