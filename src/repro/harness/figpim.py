"""The PIM figure: bank-parallelism sweep for near-memory walkers.

Not a figure from the paper — the paper's walkers live beside a host
core — but the question its placement study (Section 7) leads to once
HashMem-style near-memory hardware is on the table: if the walkers move
*into* the DRAM banks, how much bank parallelism do they need before
bank conflicts stop throttling the traversal, and where does the result
land against the host-side backends?

Method (see EXPERIMENTS.md): one bulk offload of the DRAM-resident
``Large`` kernel per bank count, on bank-side walkers
(:mod:`repro.pim`), next to the OoO baseline and the core-coupled Widx
run at the same walker count.  PIM cycles per tuple charge the amortized
host↔PIM launch (``config_cycles``) alongside the traversal, so the
speedup column is an end-to-end comparison.  Every point flows through
the measurement campaign and cache like any other figure's, so serial,
``--jobs N`` and cache-hit runs render bit-identical reports.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .campaign import (MeasurementPoint, baseline_point, pim_point,
                       widx_point)
from .report import Report
from .runner import MeasurementCache

#: The swept workload: the DRAM-resident kernel, where node hops actually
#: reach the banks (Small/Medium mostly hit the host LLC, which bank-side
#: walkers do not have).
PIM_KIND = "kernel"
PIM_NAME = "Large"

#: Walker count, fixed at the paper's best host-side configuration so the
#: sweep isolates bank parallelism.
PIM_WALKERS = 4

#: DRAM bank counts swept (the walkers interleave blocks across banks).
BANK_SWEEP: Tuple[int, ...] = (1, 2, 4, 8)


def points_fig_pim() -> List[MeasurementPoint]:
    """Measurement points the PIM figure needs.

    The baseline and Widx rows share cache keys with the Figure 8
    campaign, so a warm fig8 cache only simulates the PIM sweep.
    """
    points = [baseline_point(PIM_KIND, PIM_NAME, "ooo"),
              widx_point(PIM_KIND, PIM_NAME, PIM_WALKERS)]
    for banks in BANK_SWEEP:
        points.append(pim_point(PIM_KIND, PIM_NAME, PIM_WALKERS, banks))
    return points


def run_fig_pim(cache: MeasurementCache,
                bank_sweep: Iterable[int] = BANK_SWEEP) -> Report:
    """The PIM figure: cycles/tuple and speedup across bank counts."""
    bank_sweep = list(bank_sweep)
    ooo = cache.baseline(PIM_KIND, PIM_NAME, "ooo")
    widx = cache.widx(PIM_KIND, PIM_NAME, PIM_WALKERS)
    pim = cache.config.pim
    report = Report(
        title=f"PIM: bank-parallelism sweep on the {PIM_NAME} kernel "
              f"({PIM_WALKERS} bank-side walkers, "
              f"{pim.walkers_per_bank} access slots/bank, "
              f"launch={pim.launch_cycles:g} cycles)",
        columns=["backend", "banks", "cycles_per_tuple", "speedup_vs_ooo"])
    report.add_row("ooo", "-", ooo.cycles_per_tuple, 1.0)
    report.add_row(f"widx-{PIM_WALKERS}", "-", widx.run.cycles_per_tuple,
                   ooo.cycles_per_tuple / widx.run.cycles_per_tuple)
    speedups = []
    for banks in bank_sweep:
        run = cache.pim(PIM_KIND, PIM_NAME, PIM_WALKERS, banks).run
        cpt = (run.total_cycles + run.config_cycles) / run.tuples
        speedup = ooo.cycles_per_tuple / cpt
        speedups.append((banks, speedup))
        report.add_row(f"pim-{PIM_WALKERS}", banks, cpt, speedup)
    report.add_note(
        "pim cycles/tuple include the amortized host-to-PIM launch; "
        "widx excludes configuration (amortized separately, as in fig8)")
    first_banks, first = speedups[0]
    last_banks, last = speedups[-1]
    report.add_note(
        f"bank scaling: {first:.2f}x at {first_banks} bank(s) -> "
        f"{last:.2f}x at {last_banks} banks"
        + ("" if last >= first else " (UNEXPECTED: not monotone)"))
    return report
