"""Figure 10: Widx indexing speedup on the DSS queries, plus the paper's
Section 6.2 query-level projection.

Paper anchors: with four walkers, per-query indexing speedups span
1.5x-5.5x with a geometric mean of 3.1x; the maximum is TPC-H query 20
(large index, computationally intensive 8-byte-key hashing) and the
minimum is TPC-DS query 37 (L1-resident index, <1% L1-D miss ratio).

Query-level speedups project the indexing speedup onto each query's
Figure 2a indexing fraction (Amdahl): geomean 1.5x, max 3.1x (query 17,
94% indexing), min 10% (query 37, 29% offloaded).
"""

from __future__ import annotations

from typing import Iterable, List

from ..workloads.queryspec import QuerySpec
from ..workloads.tpcds import TPCDS_SIMULATED
from ..workloads.tpch import TPCH_SIMULATED
from .campaign import MeasurementPoint, query_points
from .report import Report
from .runner import MeasurementCache, geomean, measure_query

SIMULATED: List[QuerySpec] = TPCH_SIMULATED + TPCDS_SIMULATED


def points_fig10(walker_counts: Iterable[int] = (1, 2, 4),
                 ) -> List[MeasurementPoint]:
    """Measurement points Figure 10 needs."""
    return query_points(SIMULATED, walker_counts)


def points_query_level(walkers: int = 4) -> List[MeasurementPoint]:
    """Measurement points the Section 6.2 projection needs."""
    return query_points(SIMULATED, [walkers])


def run_fig10(cache: MeasurementCache,
              walker_counts: Iterable[int] = (1, 2, 4),
              queries: List[QuerySpec] = None) -> Report:
    """Per-query indexing speedup over the OoO baseline."""
    if queries is None:
        queries = SIMULATED
    walker_counts = list(walker_counts)
    report = Report(
        title="Figure 10: DSS indexing speedup over the OoO baseline",
        columns=["benchmark", "query", "ooo"]
        + [f"{n}_walkers" for n in walker_counts])
    by_walkers = {n: [] for n in walker_counts}
    for spec in queries:
        measurement = measure_query(cache, spec, walker_counts)
        row = [spec.benchmark, spec.label, 1.0]
        for walkers in walker_counts:
            speedup = measurement.speedup(walkers)
            by_walkers[walkers].append(speedup)
            row.append(speedup)
        report.add_row(*row)
    for walkers in walker_counts:
        note = (f"{walkers} walker(s): geomean {geomean(by_walkers[walkers]):.2f}x"
                + (" (paper: 3.1x, range 1.5x-5.5x)" if walkers == 4 else ""))
        report.add_note(note)
    return report


def amdahl_query_speedup(index_fraction: float, index_speedup: float) -> float:
    """Project an indexing speedup onto the whole query (Amdahl's law)."""
    if not 0.0 < index_fraction <= 1.0:
        raise ValueError("index fraction must be in (0, 1]")
    if index_speedup <= 0:
        raise ValueError("speedup must be positive")
    return 1.0 / ((1.0 - index_fraction) + index_fraction / index_speedup)


def run_query_level(cache: MeasurementCache, walkers: int = 4,
                    queries: List[QuerySpec] = None) -> Report:
    """Section 6.2's application-level speedup projection."""
    if queries is None:
        queries = SIMULATED
    report = Report(
        title="Query-level speedup (indexing speedup projected onto the "
              "Figure 2a indexing fraction)",
        columns=["benchmark", "query", "index_fraction",
                 "indexing_speedup", "query_speedup"])
    overall = []
    for spec in queries:
        measurement = measure_query(cache, spec, [walkers])
        indexing = measurement.speedup(walkers)
        query_level = amdahl_query_speedup(spec.index_fraction, indexing)
        overall.append(query_level)
        report.add_row(spec.benchmark, spec.label, spec.index_fraction,
                       indexing, query_level)
    report.add_note(f"geomean query speedup {geomean(overall):.2f}x "
                    "(paper: 1.5x, max 3.1x on qry17, min ~1.1x on qry37)")
    return report
