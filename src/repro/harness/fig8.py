"""Figure 8: Widx on the optimized hash-join kernel.

* **8a** — walker cycles per tuple, broken into Comp / Mem / TLB / Idle,
  for Small/Medium/Large indexes with 1/2/4 walkers, normalized to Small
  on one walker.  Paper shape: memory dominates and grows with index
  size; walkers cut memory time near-linearly; Small at 4 walkers shows
  Idle (the dispatcher cannot keep up with LLC-speed walkers); TLB cycles
  appear only for Large.
* **8b** — indexing speedup over the OoO baseline.  Paper shape: one
  walker is roughly baseline speed (+4% geomean — the kernel's
  oversimplified hash leaves decoupling little to overlap); speedup grows
  with walkers, reaching ~4x on Large.
"""

from __future__ import annotations

from typing import Iterable

from .campaign import MeasurementPoint, kernel_points, pim_point
from .report import Report
from .runner import MeasurementCache, geomean, measure_kernel

KERNEL_ORDER = ("Small", "Medium", "Large")

#: The PIM column added by ``--pim``: bank-side walkers at the paper's
#: best walker count, on the default bank geometry.
PIM_WALKERS = 4
PIM_BANKS = 8


def points_fig8(sizes: Iterable[str] = KERNEL_ORDER,
                walker_counts: Iterable[int] = (1, 2, 4),
                include_pim: bool = False) -> "list[MeasurementPoint]":
    """Measurement points Figures 8a/8b need (identical for both).

    ``include_pim`` adds one bank-side offload per size for the
    cross-backend speedup column (``--pim``).
    """
    points = kernel_points(sizes, walker_counts)
    if include_pim:
        for size in sizes:
            points.append(pim_point("kernel", size, PIM_WALKERS, PIM_BANKS))
    return points


def run_fig8a(cache: MeasurementCache,
              sizes: Iterable[str] = KERNEL_ORDER,
              walker_counts: Iterable[int] = (1, 2, 4)) -> Report:
    """Figure 8a: kernel walker cycle breakdown (Comp/Mem/TLB/Idle)."""
    report = Report(
        title="Figure 8a: Widx walker cycles per tuple on the hash-join "
              "kernel (normalized to Small @ 1 walker)",
        columns=["size", "walkers", "comp", "mem", "tlb", "idle", "total"])
    walker_counts = list(walker_counts)
    sizes = list(sizes)
    baseline_total = None
    for size in sizes:
        measurement = measure_kernel(cache, size, walker_counts)
        for walkers in walker_counts:
            breakdown = measurement.walker_breakdown(walkers)
            idle = breakdown.idle + breakdown.queue  # paper folds queue stalls
            total = breakdown.comp + breakdown.mem + breakdown.tlb + idle
            if baseline_total is None:
                baseline_total = total  # Small @ 1 walker comes first
            scale = 1.0 / baseline_total
            report.add_row(size, walkers,
                           breakdown.comp * scale, breakdown.mem * scale,
                           breakdown.tlb * scale, idle * scale,
                           total * scale)
    report.add_note("paper: Mem dominates and scales ~linearly down with "
                    "walkers; Small@4 shows Idle (dispatcher-bound)")
    return report


def run_fig8b(cache: MeasurementCache,
              sizes: Iterable[str] = KERNEL_ORDER,
              walker_counts: Iterable[int] = (1, 2, 4),
              include_pim: bool = False) -> Report:
    """Figure 8b: kernel indexing speedup over the OoO baseline.

    ``include_pim`` appends a bank-side walker column (the cross-backend
    comparison the 2013 paper couldn't run); PIM speedups charge the
    amortized host↔PIM launch alongside the traversal cycles.  Default
    off, leaving the report byte-identical to the committed golden.
    """
    walker_counts = list(walker_counts)
    columns = ["size", "ooo"] + [f"{n}_walkers" for n in walker_counts]
    if include_pim:
        columns.append(f"pim_{PIM_WALKERS}w")
    report = Report(
        title="Figure 8b: kernel indexing speedup over the OoO baseline",
        columns=columns)
    speedups_by_walkers = {n: [] for n in walker_counts}
    pim_speedups = []
    for size in sizes:
        measurement = measure_kernel(cache, size, walker_counts)
        row = [size, 1.0]
        for walkers in walker_counts:
            speedup = measurement.speedup(walkers)
            speedups_by_walkers[walkers].append(speedup)
            row.append(speedup)
        if include_pim:
            outcome = cache.pim("kernel", size, PIM_WALKERS, PIM_BANKS)
            run = outcome.run
            pim_cpt = (run.total_cycles + run.config_cycles) / run.tuples
            speedup = measurement.ooo.cycles_per_tuple / pim_cpt
            pim_speedups.append(speedup)
            row.append(speedup)
        report.add_row(*row)
    for walkers in walker_counts:
        report.add_note(
            f"{walkers} walker(s): geomean speedup "
            f"{geomean(speedups_by_walkers[walkers]):.2f}x "
            + ("(paper: ~1.04x)" if walkers == 1 else
               "(paper: up to 4x on Large)" if walkers == 4 else ""))
    if include_pim:
        report.add_note(
            f"pim: {PIM_WALKERS} bank-side walkers over {PIM_BANKS} banks, "
            f"geomean speedup {geomean(pim_speedups):.2f}x (launch latency "
            f"amortized over the bulk probe)")
    return report
