"""Experiment harness: one driver per paper table/figure.

Each ``figN`` module exposes a ``run(...)`` returning a
:class:`~repro.harness.report.Report` whose rows are the same series the
paper plots.  The benchmarks under ``benchmarks/`` call these drivers and
print the reports; EXPERIMENTS.md records paper-vs-measured for each.
"""

from .campaign import (Campaign, CampaignResult, MeasurementPoint,
                       PointFailure, RetryPolicy)
from .cachestore import CacheStore
from .chaos import ChaosSpec
from .report import Report
from .runner import (MeasurementCache, RunSettings, measure_kernel,
                     measure_query, geomean, DEFAULT_RUNS)

__all__ = [
    "Report",
    "Campaign",
    "CampaignResult",
    "MeasurementPoint",
    "PointFailure",
    "RetryPolicy",
    "ChaosSpec",
    "CacheStore",
    "MeasurementCache",
    "RunSettings",
    "measure_kernel",
    "measure_query",
    "geomean",
    "DEFAULT_RUNS",
]
