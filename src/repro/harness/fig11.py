"""Figure 11 and Section 6.3: runtime, energy, energy-delay and area.

Measured DSS indexing runtimes (geomean over the simulated queries) for
the OoO baseline, the in-order core and Widx feed the §6.3 power model.

Paper anchors: in-order is ~2.2x slower than OoO but saves 86% energy;
Widx (3.1x faster) saves 83% while keeping OoO-class latency, improving
energy-delay by 5.5x over in-order and 17.5x over OoO.  Area: one Widx
unit is 0.039 mm² / 53 mW; the six-unit complex is 0.24 mm² / 320 mW —
18% of a Cortex-A8.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import WidxConfig
from ..energy.metrics import EnergyReport, energy_report
from ..energy.power import PowerModel
from ..workloads.queryspec import QuerySpec
from ..workloads.tpcds import TPCDS_SIMULATED
from ..workloads.tpch import TPCH_SIMULATED
from .campaign import MeasurementPoint, query_points
from .report import Report
from .runner import MeasurementCache, geomean, measure_query

SIMULATED: List[QuerySpec] = TPCH_SIMULATED + TPCDS_SIMULATED


def points_fig11(walkers: int = 4) -> List[MeasurementPoint]:
    """Measurement points Figure 11 needs (adds the in-order baseline)."""
    return query_points(SIMULATED, [walkers], include_inorder=True)


def measured_runtimes(cache: MeasurementCache, walkers: int = 4,
                      queries: List[QuerySpec] = None) -> Dict[str, float]:
    """Geomean indexing cycles/tuple per design over the DSS queries."""
    if queries is None:
        queries = SIMULATED
    ooo, inorder, widx = [], [], []
    for spec in queries:
        measurement = measure_query(cache, spec, [walkers],
                                    include_inorder=True)
        ooo.append(measurement.ooo.cycles_per_tuple)
        inorder.append(measurement.inorder.cycles_per_tuple)
        widx.append(measurement.widx[walkers].cycles_per_tuple)
    return {"ooo": geomean(ooo), "inorder": geomean(inorder),
            "widx": geomean(widx)}


def run_fig11(cache: MeasurementCache, walkers: int = 4,
              queries: List[QuerySpec] = None) -> Report:
    """Figure 11: runtime / energy / energy-delay, normalized to OoO."""
    runtimes = measured_runtimes(cache, walkers, queries)
    widx_config = WidxConfig(num_walkers=walkers)
    energy = energy_report(runtimes, widx=widx_config)
    report = Report(
        title="Figure 11: indexing runtime, energy and energy-delay "
              "(normalized to OoO; lower is better)",
        columns=["design", "runtime", "energy", "energy_delay"])
    for design in ("ooo", "inorder", "widx"):
        point = energy[design]
        report.add_row(design, point.runtime, point.energy, point.edp)
    report.add_note(
        f"Widx saves {energy.widx_energy_saving:.0%} energy vs OoO "
        f"(paper: 83%); in-order saves {energy.inorder_energy_saving:.0%} "
        f"(paper: 86%)")
    report.add_note(
        f"Widx energy-delay: {energy.widx_edp_gain_vs_ooo:.1f}x better than "
        f"OoO (paper: 17.5x), {energy.widx_edp_gain_vs_inorder:.1f}x better "
        f"than in-order (paper: 5.5x)")
    return report


def run_area(walkers: int = 4) -> Report:
    """Section 6.3's area/power table."""
    model = PowerModel()
    widx_config = WidxConfig(num_walkers=walkers)
    area = model.widx_area(widx_config)
    constants = model.constants
    report = Report(
        title="Section 6.3: area and peak power (TSMC 40 nm, 2 GHz)",
        columns=["component", "area_mm2", "power_w"])
    report.add_row("Widx unit (incl. 2-entry queues)",
                   constants.widx_unit_area_mm2, constants.widx_unit_power_w)
    report.add_row(f"Widx complex ({area.widx_units} units)",
                   area.widx_area_mm2, model.widx_power(widx_config))
    report.add_row("ARM Cortex-A8 (incl. L1)", constants.a8_area_mm2,
                   constants.a8_power_w)
    report.add_note(f"Widx complex is {area.fraction_of_a8:.0%} of a "
                    "Cortex-A8's area (paper: 18%)")
    return report
