"""The resilience figure: goodput under walker faults and overload.

Not a figure from the paper — the paper's Widx units never fail — but
the question its all-or-nothing offload model raises for a serving
deployment: when walkers start dying, how much *useful* work (requests
served inside the latency SLO) does each backend still deliver, and how
much traffic must admission control shed to keep the survivors in-SLO?

Method (see EXPERIMENTS.md): the same calibrated service models as
fig-serve — the campaign points are literally :func:`points_fig_serve`,
so a warm fig-serve cache renders this figure without a single new
simulation — swept over a fault-rate × offered-load grid.  Faults are a
seeded exponential time-to-failure per walker
(:class:`~repro.serve.faults.WalkerFaultModel`); a core that loses
walkers serves slower, and a core that loses *all* of them falls back
to the in-order host model, which is why the in-order calibration rides
along even though the in-order backend itself is not swept.  The sweep
is deterministic given the run seed, so serial, ``--jobs N`` and
cache-hit campaigns render bit-identical reports.
"""

from __future__ import annotations

from typing import List, Tuple

from ..serve.policies import parse_policy
from ..serve.simulate import ResilienceConfig, ServeResult, run_open_loop
from ..serve.faults import WalkerFaultModel
from .campaign import MeasurementPoint
from .figserve import (BACKENDS, PIM_BACKEND, SERVE_NAME, SWEEP_REQUESTS,
                       points_fig_serve, service_model)
from .report import Report
from .runner import MeasurementCache

#: Fault rates swept, in walker deaths per walker per megacycle.  Zero is
#: the control row — bit-identical latency to a fault-free resilient run.
FAULT_RATES: Tuple[float, ...] = (0.0, 4.0, 16.0)

#: Offered loads swept, as fractions of each backend's fault-free
#: saturation rate (overload shows up as shed traffic, not extra rows).
LOAD_FRACTIONS: Tuple[float, ...] = (0.5, 0.8)

#: Admission policy: shed past this many queued requests per core.  The
#: open-loop source must never block, and under faults the backlog grows
#: without bound, so the resilience sweep always runs with shedding on.
SHED_DEPTH = 32

#: Latency SLO, as a multiple of each backend's fault-free single-request
#: service time: a request is "good" if it finishes within 20x the time
#: an unloaded, undamaged core would take.
SLO_SERVICE_MULTIPLE = 20.0

#: Only the Widx backends are swept — walkers are what fails.  The
#: in-order backend appears as every core's all-walkers-dead fallback.
FAULT_BACKENDS = tuple(entry for entry in BACKENDS if entry[2] > 0)


def _fault_backends(include_pim: bool):
    """The fault-swept backends; bank-side walkers die like any others."""
    return FAULT_BACKENDS + ((PIM_BACKEND,) if include_pim else ())


def points_fig_resilience(include_pim: bool = False) -> List[MeasurementPoint]:
    """Same calibration points as fig-serve (shared cache keys)."""
    return points_fig_serve(include_pim)


def run_fig_resilience(cache: MeasurementCache,
                       policy_spec: str = f"shed:{SHED_DEPTH}",
                       bulk: bool = False,
                       include_pim: bool = False) -> Report:
    """The resilience figure: goodput and shed fraction per backend
    across a walker-fault-rate x offered-load grid."""
    parse_policy(policy_spec)  # fail fast on a bad spec
    fallback = service_model(cache, *_backend_args("inorder"))
    cores = cache.config.num_cores
    fault_backends = _fault_backends(include_pim)
    report = Report(
        title=f"Resilience: goodput under walker faults on the "
              f"{SERVE_NAME} kernel (SLO = {SLO_SERVICE_MULTIPLE:g}x "
              f"unloaded service time, policy={policy_spec})",
        columns=["backend", "rate", "load", "offered", "goodput",
                 "shed_frac", "served", "expired", "faults", "p99"])
    for label, backend, walkers, mode in fault_backends:
        model = service_model(cache, label, backend, walkers, mode)
        saturation = cores * model.saturation_rate()
        slo = SLO_SERVICE_MULTIPLE * model.cycles_for(1)
        for rate in FAULT_RATES:
            faults = WalkerFaultModel(seed=cache.runs.seed, rate=rate,
                                      walkers_per_core=walkers)
            resilience = ResilienceConfig(
                slo=slo, faults=faults if faults.active else None,
                fallback=fallback if faults.active else None)
            for fraction in LOAD_FRACTIONS:
                policy = parse_policy(policy_spec)  # fresh instance per run
                result = run_open_loop(
                    model, rate=fraction * saturation,
                    num_requests=SWEEP_REQUESTS, policy=policy, cores=cores,
                    seed=cache.runs.seed, bulk=bulk, resilience=resilience)
                report.add_row(label, rate, fraction, result.offered,
                               round(result.goodput, 4),
                               round(result.shed_fraction, 4),
                               result.completed, result.expired,
                               result.faults, result.p99)
    for label, backend, walkers, mode in fault_backends:
        model = service_model(cache, label, backend, walkers, mode)
        report.add_note(
            f"{label}: SLO {SLO_SERVICE_MULTIPLE * model.cycles_for(1):.1f} "
            f"cycles, {walkers} walkers/core across {cores} cores "
            f"(all-dead fallback: {fallback.label})")
    report.add_note(
        "rate is walker deaths per walker per megacycle (seeded "
        "exponential TTF; draws shared across rates, so goodput is "
        "weakly non-increasing in rate); goodput is in-SLO completions "
        "per kilocycle; load is the fraction of the backend's fault-free "
        "saturation rate")
    return report


def _backend_args(label: str) -> Tuple[str, str, int, str]:
    """The (label, backend, walkers, mode) tuple for one BACKENDS row."""
    for entry in BACKENDS:
        if entry[0] == label:
            return entry
    raise KeyError(label)
