"""Figure 4: the accelerator bottleneck analysis (Section 3.2).

Three constraints on walker scaling, from the analytical model:

* **4a** L1-D bandwidth: memory ops per cycle vs LLC miss ratio, per
  walker count — a single-ported L1 bottlenecks more than six walkers at
  low miss ratios; two ports comfortably support ten.
* **4b** MSHRs: outstanding L1 misses grow linearly with walkers; 8-10
  MSHRs cap the design at four or five walkers.
* **4c** Off-chip bandwidth: one memory controller sustains ~8 walkers at
  low LLC miss ratios, dropping to ~4 at high miss ratios.
"""

from __future__ import annotations

from ..model.analytical import (AnalyticalModel, fig4a_series, fig4b_series,
                                fig4c_series, max_walkers_by_mshrs)
from .report import Report


def run_fig4a(model: AnalyticalModel = AnalyticalModel()) -> Report:
    """Figure 4a: L1 bandwidth pressure vs LLC miss ratio."""
    series = fig4a_series(model)
    walker_counts = sorted(series)
    miss_ratios = [point[0] for point in series[walker_counts[0]]]
    report = Report(
        title="Figure 4a: L1-D bandwidth (mem ops/cycle vs LLC miss ratio)",
        columns=["llc_miss_ratio"] + [f"{n}_walkers" for n in walker_counts])
    for i, miss in enumerate(miss_ratios):
        report.add_row(miss, *(series[n][i][1] for n in walker_counts))
    report.add_note(f"L1 ports available: {model.params.l1_ports} "
                    "(values above 1.0 exceed a single-ported L1)")
    return report


def run_fig4b(model: AnalyticalModel = AnalyticalModel()) -> Report:
    """Figure 4b: outstanding L1 misses vs walker count."""
    report = Report(
        title="Figure 4b: MSHR pressure (outstanding L1 misses vs walkers)",
        columns=["walkers", "outstanding_misses"])
    for walkers, misses in fig4b_series(model):
        report.add_row(walkers, misses)
    report.add_note(
        f"MSHR budget {model.params.mshrs}: supports "
        f"{max_walkers_by_mshrs(model)} walkers "
        f"(paper: four or five with 8-10 MSHRs)")
    return report


def run_fig4c(model: AnalyticalModel = AnalyticalModel()) -> Report:
    """Figure 4c: walkers per memory controller vs LLC miss ratio."""
    report = Report(
        title="Figure 4c: off-chip bandwidth (walkers per MC vs LLC miss ratio)",
        columns=["llc_miss_ratio", "walkers_per_mc"])
    for miss, walkers in fig4c_series(model):
        report.add_row(miss, walkers)
    report.add_note("paper: ~8 walkers/MC at low miss ratios, ~4 at high")
    return report
