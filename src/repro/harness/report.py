"""Plain-text reports mirroring the paper's tables and figure series."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class Report:
    """A titled table of rows, with free-form notes."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append a row (arity-checked against the columns)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"report {self.title!r}: row has {len(values)} values, "
                f"expected {len(self.columns)}")
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Attach a free-form note printed under the table."""
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def row_by(self, key_column: str, key: Any) -> Sequence[Any]:
        """The first row whose key column equals ``key``."""
        index = list(self.columns).index(key_column)
        for row in self.rows:
            if row[index] == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r}")

    def cell(self, key_column: str, key: Any, value_column: str) -> Any:
        """One cell, addressed by key column and value column."""
        row = self.row_by(key_column, key)
        return row[list(self.columns).index(value_column)]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict of columns, rows and notes."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` payload as canonical JSON (sorted keys).

        The single serialization path shared by ``--stats-json`` and the
        campaign failure manifest; floats round-trip via ``repr``, so
        serialized reports are bit-stable across runs.
        """
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def format(self) -> str:
        """Aligned plain-text rendering of the table."""
        def text(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
            return str(value)

        header = [str(c) for c in self.columns]
        body = [[text(v) for v in row] for row in self.rows]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.rjust(width)
                             for cell, width in zip(cells, widths))

        parts = [f"== {self.title} ==", line(header),
                 line(["-" * w for w in widths])]
        parts.extend(line(row) for row in body)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.format()


def failure_report(failures: Sequence[Any]) -> Report:
    """The campaign failure manifest as a printable table.

    ``failures`` is a sequence of
    :class:`~repro.harness.campaign.PointFailure` (duck-typed to avoid an
    import cycle).  Rendered by the CLI after a degraded campaign so the
    reader sees exactly which points are missing from the figures and why.
    """
    report = Report(
        title="Campaign failures",
        columns=("point", "kind", "attempts", "detail"))
    for failure in failures:
        report.add_row("/".join(str(part) for part
                                in failure.point.cache_tuple()),
                       failure.kind, failure.attempts, failure.detail)
    report.add_note("failed points are excluded from the figure reports; "
                    "re-running the same command retries them")
    return report
