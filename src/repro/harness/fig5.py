"""Figure 5: how many walkers one dispatcher can feed (Equation 6).

Walker utilization vs LLC miss ratio for 2/4/8 walkers at bucket depths of
1, 2 and 3 nodes.  Paper conclusion: a single decoupled hashing unit feeds
up to four walkers, except for very shallow buckets (1 node) with low LLC
miss ratios.
"""

from __future__ import annotations

from ..model.analytical import AnalyticalModel, fig5_series
from .report import Report


def run_fig5(model: AnalyticalModel = AnalyticalModel()) -> Report:
    """Figure 5: walker utilization under one shared dispatcher."""
    series = fig5_series(model)
    report = Report(
        title="Figure 5: walker utilization with one shared dispatcher",
        columns=["nodes_per_bucket", "llc_miss_ratio",
                 "2_walkers", "4_walkers", "8_walkers"])
    for bucket_depth in sorted(series):
        by_walkers = series[bucket_depth]
        miss_ratios = [point[0] for point in by_walkers[2]]
        for i, miss in enumerate(miss_ratios):
            report.add_row(bucket_depth, miss,
                           by_walkers[2][i][1], by_walkers[4][i][1],
                           by_walkers[8][i][1])
    report.add_note("paper: one dispatcher feeds 4 walkers except for "
                    "1-node buckets at low LLC miss ratios")
    return report
