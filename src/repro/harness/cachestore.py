"""Persistent measurement storage for the experiment campaign.

The in-memory :class:`~repro.harness.runner.MeasurementCache` dies with the
process; a :class:`CacheStore` backs it with one JSON file per measurement
point under a cache directory, so ``python -m repro`` invocations (and
benchmark sessions) reuse minutes of simulation instead of repeating it.

Design points:

* **Keys are content hashes** of (config, run settings, measurement point)
  — see :func:`repro.harness.runner.measurement_key` — so a cache directory
  can be shared across configurations without collisions.
* **Entries are self-verifying**: each file carries a SHA-256 checksum of
  its payload.  A truncated, corrupted or hand-edited file fails
  verification and :meth:`CacheStore.get` returns ``None``; the caller
  transparently re-measures.  A cache can never make a run crash.
* **Writes are atomic and durable**: entries are written to a temp file,
  flushed and fsync'd, then ``os.replace``d into place — a killed worker
  (or power cut) can never leave a half-written entry under a live key;
  at worst it abandons a ``.tmp-*`` file, which :meth:`CacheStore.__init__`
  sweeps once it is old enough that no live writer can own it.

Only the numbers the figure drivers consume are persisted: a
:class:`~repro.cpu.timing.CoreTimingResult` round-trips completely; an
:class:`~repro.widx.offload.OffloadOutcome` is slimmed to its
:class:`~repro.widx.machine.WidxRunResult` (timing + per-unit cycle
breakdowns) plus the validation/fallback flags — simulated memory
hierarchies and generated programs are rebuilt on demand, never stored.
Both carry their :class:`~repro.obs.StatsRegistry` snapshot, so cache-hit
runs contribute exactly the same merged statistics as freshly measured
ones.  JSON floats serialize via ``repr`` and therefore round-trip
bit-exactly, which is what makes cache-hit reports byte-identical to
measured ones.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict
from typing import Any, Dict, Optional

from ..config import stable_digest, stable_json
from ..cpu.timing import CoreTimingResult
from ..serve.service import ServiceMeasurement
from ..widx.machine import WidxRunResult
from ..widx.offload import OffloadOutcome
from ..widx.unit import UnitCycleBreakdown, UnitStats

#: Bump when the payload schema changes; old entries are then ignored.
#: Format 2 added per-measurement stats-registry snapshots (the
#: observability refactor).
CACHE_FORMAT = 2

#: Orphaned temp files older than this are swept on store open.  Any live
#: writer finishes a put in well under an hour; anything older was
#: abandoned by a killed process.
STALE_TEMP_SECONDS = 3600.0


class CacheDecodeError(ValueError):
    """A stored payload does not decode to a known measurement type."""


# --------------------------------------------------------------------------
# measurement codec
# --------------------------------------------------------------------------

def encode_measurement(obj: Any) -> Dict[str, Any]:
    """JSON-ready payload for a measurement result."""
    if isinstance(obj, CoreTimingResult):
        return {"type": "core_timing", "data": asdict(obj)}
    if isinstance(obj, ServiceMeasurement):
        return {"type": "service", "data": asdict(obj)}
    if isinstance(obj, OffloadOutcome):
        run = obj.run
        return {
            "type": "offload",
            "run": {
                "total_cycles": run.total_cycles,
                "tuples": run.tuples,
                "matches": run.matches,
                "config_cycles": run.config_cycles,
                "unit_stats": {
                    name: stats.to_dict()
                    for name, stats in sorted(run.unit_stats.items())
                },
            },
            "validated": obj.validated,
            "fell_back": obj.fell_back,
            "abort_cycles": obj.abort_cycles,
            "stats": obj.stats,
        }
    raise CacheDecodeError(f"cannot encode measurement of type {type(obj)!r}")


def decode_measurement(payload: Dict[str, Any]) -> Any:
    """Rebuild a measurement object from :func:`encode_measurement` output."""
    try:
        kind = payload["type"]
        if kind == "core_timing":
            return CoreTimingResult(**payload["data"])
        if kind == "service":
            return ServiceMeasurement(**payload["data"])
        if kind == "offload":
            run = payload["run"]
            result = WidxRunResult(
                total_cycles=run["total_cycles"],
                tuples=run["tuples"],
                matches=run["matches"],
                config_cycles=run["config_cycles"],
                unit_stats={name: _decode_unit_stats(stats)
                            for name, stats in run["unit_stats"].items()},
            )
            return OffloadOutcome(run=result,
                                  validated=payload["validated"],
                                  fell_back=payload["fell_back"],
                                  abort_cycles=payload["abort_cycles"],
                                  stats=payload.get("stats"))
    except CacheDecodeError:
        raise
    except (KeyError, TypeError) as exc:
        raise CacheDecodeError(f"malformed measurement payload: {exc}") from exc
    raise CacheDecodeError(f"unknown measurement type {payload.get('type')!r}")


def _decode_unit_stats(data: Dict[str, Any]) -> UnitStats:
    cycles = UnitCycleBreakdown(**data["cycles"])
    fields = {key: value for key, value in data.items() if key != "cycles"}
    return UnitStats(cycles=cycles, **fields)


# --------------------------------------------------------------------------
# on-disk store
# --------------------------------------------------------------------------

class CacheStore:
    """One-JSON-file-per-key persistent store with integrity checking."""

    def __init__(self, directory: str) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.rejected = 0  # corrupted / stale-format entries skipped
        self.swept_temps = self._sweep_stale_temps()

    def _sweep_stale_temps(self,
                           max_age_seconds: float = STALE_TEMP_SECONDS) -> int:
        """Remove temp files abandoned by killed writers; returns a count.

        Only files older than ``max_age_seconds`` go — a younger temp may
        belong to a concurrent campaign worker mid-:meth:`put`.
        """
        swept = 0
        cutoff = time.time() - max_age_seconds
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if not name.startswith(".tmp-"):
                continue
            path = os.path.join(self.directory, name)
            try:
                if os.path.getmtime(path) < cutoff:
                    os.unlink(path)
                    swept += 1
            except OSError:
                continue  # raced with another sweeper or a live writer
        return swept

    def path(self, key: str) -> str:
        """The file backing one key."""
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload, or ``None`` if absent, corrupt or stale."""
        try:
            with open(self.path(key), "r", encoding="utf-8") as handle:
                wrapper = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.rejected += 1
            return None
        payload = self._verify(wrapper, key)
        if payload is None:
            self.rejected += 1
            return None
        self.hits += 1
        return payload

    @staticmethod
    def _verify(wrapper: Any, key: str) -> Optional[Dict[str, Any]]:
        if not isinstance(wrapper, dict):
            return None
        if wrapper.get("format") != CACHE_FORMAT or wrapper.get("key") != key:
            return None
        payload = wrapper.get("payload")
        if not isinstance(payload, dict):
            return None
        if wrapper.get("checksum") != stable_digest(payload):
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist a payload under ``key``."""
        wrapper = {
            "format": CACHE_FORMAT,
            "key": key,
            "checksum": stable_digest(payload),
            "payload": payload,
        }
        fd, temp_path = tempfile.mkstemp(dir=self.directory,
                                         prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(stable_json(wrapper))
                handle.flush()
                # Force the bytes to disk *before* the rename publishes the
                # entry: os.replace is atomic in the namespace, but without
                # the fsync a crash could still surface a torn entry under
                # the final name.
                os.fsync(handle.fileno())
            os.replace(temp_path, self.path(key))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".json") and not name.startswith("."))

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path(key))
