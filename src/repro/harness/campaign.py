"""Campaign layer: enumerate, parallelize and prefetch measurements.

A *campaign* is the set of (workload x core x walker-count) measurement
points an experiment selection needs.  Figures share points (Figure 10's
speedups reuse Figure 9's runs; Figure 11 aggregates both), so the CLI
first asks every selected driver to declare its points, dedups them, and
prefetches the misses — optionally across worker processes — before any
driver runs.  The drivers then execute unchanged against a warm
:class:`~repro.harness.runner.MeasurementCache`.

**Determinism.**  The simulator is deterministic given a seed, and each
measurement is hermetic: offloads release their scratch output regions
(see :meth:`repro.mem.layout.AddressSpace.release`), so a point measures
identically whether it runs first, last, alone or in another process.
Serial, parallel and cache-hit runs therefore produce bit-identical
reports.  Points are still grouped per workload — one index build serves
the whole group — and measured in the drivers' canonical order (baselines
first, then Widx by ascending walker count).

Parallel results cross process boundaries as the same JSON payloads the
persistent store uses (:mod:`repro.harness.cachestore`); JSON floats
round-trip exactly, so no precision is lost on the way back.  Each payload
also carries the measurement's :class:`~repro.obs.StatsRegistry` snapshot,
so the merged statistics (:meth:`~repro.harness.runner.MeasurementCache.
merged_stats`) are identical whether a point was measured in-process, by a
worker, or loaded from the store.

**Fault tolerance.**  A campaign outlives its workers.  Each worker
streams per-point results back over a pipe as it finishes them, so a
worker that crashes (OOM kill, segfault) or wedges (reaped by the
per-point progress timeout from :class:`RetryPolicy`) forfeits only its
unfinished points: the point being measured at the time is charged one
attempt and retried with exponential backoff, the rest of its group is
requeued unchanged.  A measurement that raises inside a healthy worker is
retried the same way.  Points that exhaust their retries are *poisoned*
in the cache and recorded in the :class:`CampaignResult` failure
manifest; everything else completes normally, so one pathological point
cannot sink a campaign.  If worker infrastructure itself looks broken
(``degrade_after`` consecutive crashes/timeouts), the campaign terminates
the pool and degrades to in-process serial execution — the slowest but
most robust executor, and the one fault injection never kills.  Ctrl-C
terminates workers and raises :class:`~repro.errors.CampaignInterrupted`;
completed points are already in the cache, so re-running resumes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mpconnection
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..config import SystemConfig
from ..errors import CampaignInterrupted
from ..workloads.queryspec import QuerySpec
from .cachestore import decode_measurement, encode_measurement
from .chaos import (ChaosSpec, inject_measurement_error,
                    inject_worker_faults)
from .runner import MeasurementCache, RunSettings

#: Baselines measure before offloads; OoO before in-order (driver order).
_CORE_ORDER = {"ooo": 0, "inorder": 1}


@dataclass(frozen=True)
class MeasurementPoint:
    """One simulator run a figure needs: a workload on a core or on Widx."""

    kind: str          # "kernel" | "query" | "ordered"
    name: str          # kernel size ("Small"), query id ("tpch:20") or
                       # ordered workload ("trie:Small")
    op: str            # "baseline" | "widx" | "pim" | "serve" | "index"
    core: str = ""     # baseline: "ooo" | "inorder"; serve: backend;
                       # index: "ooo" | "inorder" | "widx"
    walkers: int = 0   # widx / pim / serve-on-widx / index-on-widx only
    mode: str = ""     # widx / pim / serve-on-widx only: Widx organization
    batch: int = 0     # serve only: probe keys in the calibrated batch
    banks: int = 0     # pim only: DRAM banks the walkers interleave over

    def cache_tuple(self) -> Tuple:
        """The :class:`MeasurementCache` key this point populates."""
        if self.op == "baseline":
            return ("baseline", self.kind, self.name, self.core)
        if self.op == "serve":
            return ("serve", self.kind, self.name, self.core,
                    self.walkers, self.mode, self.batch)
        if self.op == "pim":
            return ("pim", self.kind, self.name, self.walkers, self.mode,
                    self.banks)
        if self.op == "index":
            return ("index", self.kind, self.name, self.core,
                    self.walkers, self.mode)
        return ("widx", self.kind, self.name, self.walkers, self.mode)

    @property
    def workload(self) -> Tuple[str, str]:
        return (self.kind, self.name)

    def order_key(self) -> Tuple:
        """Canonical within-workload measurement order (see module doc)."""
        if self.op == "baseline":
            return (0, _CORE_ORDER.get(self.core, 99), self.core)
        if self.op == "serve":
            return (3, _CORE_ORDER.get(self.core, 99), self.core,
                    self.walkers, self.mode, self.batch)
        if self.op == "pim":
            return (2, self.banks, self.walkers, self.mode)
        if self.op == "index":
            if self.core in _CORE_ORDER:
                return (0, _CORE_ORDER[self.core], self.core)
            return (1, self.walkers, self.mode)
        return (1, self.walkers, self.mode)


def baseline_point(kind: str, name: str, core: str) -> MeasurementPoint:
    """A baseline-core measurement point."""
    return MeasurementPoint(kind=kind, name=name, op="baseline", core=core)


def widx_point(kind: str, name: str, walkers: int,
               mode: str = "shared") -> MeasurementPoint:
    """A Widx-offload measurement point."""
    return MeasurementPoint(kind=kind, name=name, op="widx",
                            walkers=walkers, mode=mode)


def pim_point(kind: str, name: str, walkers: int, banks: int,
              mode: str = "shared") -> MeasurementPoint:
    """A near-memory (bank-side walker) offload measurement point."""
    return MeasurementPoint(kind=kind, name=name, op="pim",
                            walkers=walkers, mode=mode, banks=banks)


def serve_point(kind: str, name: str, backend: str, batch_keys: int,
                walkers: int = 0, mode: str = "") -> MeasurementPoint:
    """A serving-layer service-time calibration point."""
    return MeasurementPoint(kind=kind, name=name, op="serve", core=backend,
                            walkers=walkers, mode=mode, batch=batch_keys)


def index_point(name: str, core: str, walkers: int = 0,
                mode: str = "") -> MeasurementPoint:
    """An ordered-index zoo measurement point.

    ``name`` is ``"<class>:<size>"`` (e.g. ``"trie:Small"``); ``core`` is
    a baseline core (``"ooo"``/``"inorder"``) or ``"widx"`` with a walker
    count and organization.
    """
    return MeasurementPoint(kind="ordered", name=name, op="index",
                            core=core, walkers=walkers, mode=mode)


def kernel_points(sizes: Iterable[str], walker_counts: Iterable[int],
                  ) -> List[MeasurementPoint]:
    """Points for the hash-join kernel figures (8a/8b)."""
    points = []
    for size in sizes:
        points.append(baseline_point("kernel", size, "ooo"))
        for walkers in walker_counts:
            points.append(widx_point("kernel", size, walkers))
    return points


def query_points(specs: Iterable[QuerySpec], walker_counts: Iterable[int],
                 include_inorder: bool = False) -> List[MeasurementPoint]:
    """Points for the DSS-query figures (9/10/11)."""
    points = []
    for spec in specs:
        name = f"{spec.benchmark}:{spec.number}"
        points.append(baseline_point("query", name, "ooo"))
        if include_inorder:
            points.append(baseline_point("query", name, "inorder"))
        for walkers in walker_counts:
            points.append(widx_point("query", name, walkers))
    return points


def dedup_points(points: Iterable[MeasurementPoint]) -> List[MeasurementPoint]:
    """Unique points, first occurrence wins, order preserved."""
    seen = set()
    unique = []
    for point in points:
        if point not in seen:
            seen.add(point)
            unique.append(point)
    return unique


def group_by_workload(points: Iterable[MeasurementPoint],
                      ) -> List[List[MeasurementPoint]]:
    """Points grouped per workload, each group canonically ordered."""
    groups: Dict[Tuple[str, str], List[MeasurementPoint]] = {}
    for point in dedup_points(points):
        groups.setdefault(point.workload, []).append(point)
    return [sorted(group, key=MeasurementPoint.order_key)
            for _workload, group in sorted(groups.items())]


@dataclass(frozen=True)
class RetryPolicy:
    """How a campaign responds to failing points and dying workers.

    ``point_timeout`` is a *progress* deadline in wall seconds: a worker
    that neither finishes a point nor crashes within it is presumed wedged
    and reaped.  ``None`` disables reaping (the simulation-level watchdog
    still bounds each measurement).  Backoff before the Nth retry of a
    point is ``min(backoff_cap, backoff_base * 2**(N-1))`` seconds.
    After ``degrade_after`` consecutive worker crashes/timeouts the
    campaign stops trusting multiprocessing and finishes serially.
    """

    max_retries: int = 2
    point_timeout: Optional[float] = None
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    degrade_after: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ValueError(
                f"point_timeout must be positive, got {self.point_timeout}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if self.degrade_after < 1:
            raise ValueError(
                f"degrade_after must be >= 1, got {self.degrade_after}")

    def backoff(self, failed_attempts: int) -> float:
        """Delay before the next try after ``failed_attempts`` failures."""
        if failed_attempts <= 0:
            return 0.0
        return min(self.backoff_cap,
                   self.backoff_base * 2.0 ** (failed_attempts - 1))


DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class PointFailure:
    """One point that exhausted its retries (a failure-manifest entry)."""

    point: MeasurementPoint
    attempts: int
    kind: str     # "crash" | "timeout" | "error"
    detail: str

    def describe(self) -> str:
        """One-line human-readable account (also the poison reason)."""
        return (f"{'/'.join(map(str, self.point.cache_tuple()))}: "
                f"{self.kind} after {self.attempts} attempts ({self.detail})")


@dataclass
class CampaignResult:
    """What a prefetch pass did, for reporting."""

    total_points: int = 0
    cached_points: int = 0    # already in memory or the persistent store
    measured_points: int = 0  # simulated this pass
    jobs: int = 1
    retries: int = 0              # point attempts that were re-run
    degraded_to_serial: bool = False
    failures: List[PointFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every requested point ended up measured or cached."""
        return not self.failures

    def summary(self) -> str:
        """One-line human-readable account (printed by the CLI)."""
        line = (f"campaign: {self.total_points} points, "
                f"{self.cached_points} cached, "
                f"{self.measured_points} measured, jobs={self.jobs}")
        if self.retries:
            line += f", {self.retries} retried"
        if self.degraded_to_serial:
            line += ", degraded to serial"
        if self.failures:
            line += f", {len(self.failures)} FAILED"
        return line


def _point_chaos_key(point: MeasurementPoint) -> str:
    """Human-targetable fault-injection key for one point."""
    return "/".join(str(part) for part in point.cache_tuple())


def _measure_point(cache: MeasurementCache, point: MeasurementPoint):
    if point.op == "baseline":
        return cache.baseline(point.kind, point.name, point.core)
    if point.op == "serve":
        return cache.service(point.kind, point.name, point.core, point.batch,
                             point.walkers, point.mode)
    if point.op == "pim":
        return cache.pim(point.kind, point.name, point.walkers, point.banks,
                         point.mode)
    if point.op == "index":
        return cache.index(point.name, point.core, point.walkers, point.mode)
    return cache.widx(point.kind, point.name, point.walkers, point.mode)


def _group_worker(conn, config: SystemConfig, runs: RunSettings,
                  points: Sequence[MeasurementPoint],
                  chaos: Optional[ChaosSpec],
                  attempts: Sequence[int],
                  bulk: bool = False) -> None:
    """Worker process: measure points, streaming results incrementally.

    Protocol (one tuple per :meth:`Connection.send`):

    * ``("ok", index, payload)`` — point measured; JSON payload attached.
    * ``("error", index, detail)`` — the measurement raised; the worker
      stays alive and continues with the rest of its group.
    * ``("done",)`` — all points attempted; a clean exit without it means
      the worker crashed mid-point.

    ``attempts[i]`` is how many times point ``i`` already failed, which is
    what lets the fault injector's per-site budget make retries run clean.
    Module-level so it pickles under every multiprocessing start method.
    """
    try:
        cache = MeasurementCache(config=config, runs=runs, bulk=bulk)
        for index, point in enumerate(points):
            key = _point_chaos_key(point)
            inject_worker_faults(chaos, key, attempts[index])
            try:
                inject_measurement_error(chaos, key, attempts[index])
                payload = encode_measurement(_measure_point(cache, point))
            except Exception as exc:  # reported, not fatal to the worker
                conn.send(("error", index,
                           f"{type(exc).__name__}: {exc}"))
                continue
            conn.send(("ok", index, payload))
        conn.send(("done",))
    finally:
        conn.close()


class _Worker:
    """Parent-side handle for one in-flight worker process."""

    __slots__ = ("process", "conn", "points", "completed", "finished",
                 "last_progress")

    def __init__(self, process, conn,
                 points: Sequence[MeasurementPoint]) -> None:
        self.process = process
        self.conn = conn
        self.points = list(points)
        self.completed: Set[int] = set()
        self.finished = False           # saw the "done" sentinel
        self.last_progress = time.monotonic()

    @property
    def remaining(self) -> List[MeasurementPoint]:
        return [point for index, point in enumerate(self.points)
                if index not in self.completed]


def default_jobs() -> int:
    """The CLI default for ``--jobs``: every available core."""
    return os.cpu_count() or 1


#: How long the scheduler waits on worker pipes per loop iteration; also
#: bounds how late a backoff-delayed task can start.
_SCHEDULER_TICK = 0.25


class Campaign:
    """Prefetches a point set into a :class:`MeasurementCache`.

    ``policy`` governs retries/timeouts/degradation (defaults to
    :data:`DEFAULT_RETRY_POLICY`); ``chaos`` optionally injects
    deterministic faults into the worker processes (see
    :mod:`repro.harness.chaos`).
    """

    def __init__(self, cache: MeasurementCache,
                 policy: Optional[RetryPolicy] = None,
                 chaos: Optional[ChaosSpec] = None) -> None:
        self.cache = cache
        self.policy = policy if policy is not None else DEFAULT_RETRY_POLICY
        self.chaos = chaos

    def run(self, points: Iterable[MeasurementPoint],
            jobs: Optional[int] = None) -> CampaignResult:
        """Ensure every point is cached; fan misses out over ``jobs``.

        Never raises for a failing *point* — those land in the result's
        failure manifest and are poisoned in the cache.  Raises
        :class:`~repro.errors.CampaignInterrupted` on Ctrl-C (after
        terminating workers; completed points stay cached).
        """
        unique = dedup_points(points)
        jobs = default_jobs() if jobs is None else max(1, jobs)
        result = CampaignResult(total_points=len(unique), jobs=jobs)

        # A new campaign is a fresh chance for previously failed points.
        pending = []
        for point in unique:
            self.cache.clear_poison(point.cache_tuple())
            # fetch() pulls persistent-store hits into memory as a side
            # effect.
            if self.cache.fetch(point.cache_tuple()) is None:
                pending.append(point)
        result.cached_points = len(unique) - len(pending)
        if not pending:
            return result

        attempts: Dict[MeasurementPoint, int] = {p: 0 for p in pending}
        groups = group_by_workload(pending)
        try:
            if jobs == 1 or len(groups) == 1:
                self._run_serial(groups, attempts, result)
            else:
                leftover = self._run_parallel(groups, jobs, attempts, result)
                if leftover:
                    result.degraded_to_serial = True
                    self._run_serial(group_by_workload(leftover),
                                     attempts, result)
        except KeyboardInterrupt:
            done = result.cached_points + result.measured_points
            raise CampaignInterrupted(
                f"campaign interrupted: {done}/{result.total_points} points "
                f"complete and cached; re-run the same command to resume",
                completed=done, total=result.total_points) from None
        return result

    # --- failure accounting ---------------------------------------------

    def _register_failure(self, point: MeasurementPoint, kind: str,
                          detail: str, attempts: Dict[MeasurementPoint, int],
                          result: CampaignResult) -> bool:
        """Charge one failed attempt; True if the point may retry."""
        attempts[point] += 1
        if attempts[point] > self.policy.max_retries:
            failure = PointFailure(point=point, attempts=attempts[point],
                                   kind=kind, detail=detail)
            result.failures.append(failure)
            self.cache.poison(point.cache_tuple(), failure.describe())
            return False
        result.retries += 1
        return True

    # --- serial executor -------------------------------------------------

    def _run_serial(self, groups: Sequence[Sequence[MeasurementPoint]],
                    attempts: Dict[MeasurementPoint, int],
                    result: CampaignResult) -> None:
        """In-process executor: slow, but immune to worker-level faults.

        Only the 'error' fault site applies here — kill and hang are
        worker-process faults by construction — which is what makes
        degradation to serial the recovery of last resort.
        """
        for group in groups:
            for point in group:
                self._measure_with_retries(point, attempts, result)

    def _measure_with_retries(self, point: MeasurementPoint,
                              attempts: Dict[MeasurementPoint, int],
                              result: CampaignResult) -> None:
        key = _point_chaos_key(point)
        while True:
            try:
                inject_measurement_error(self.chaos, key, attempts[point])
                _measure_point(self.cache, point)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                detail = f"{type(exc).__name__}: {exc}"
                if not self._register_failure(point, "error", detail,
                                              attempts, result):
                    return
                delay = self.policy.backoff(attempts[point])
                if delay > 0:
                    time.sleep(delay)
                continue
            result.measured_points += 1
            return

    # --- parallel executor -----------------------------------------------

    def _spawn(self, points: Sequence[MeasurementPoint],
               attempts: Dict[MeasurementPoint, int]) -> _Worker:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_group_worker,
            args=(child_conn, self.cache.config, self.cache.runs,
                  list(points), self.chaos,
                  [attempts[point] for point in points],
                  self.cache.bulk),
            daemon=True)
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn, points)

    def _run_parallel(self, groups: Sequence[Sequence[MeasurementPoint]],
                      jobs: int, attempts: Dict[MeasurementPoint, int],
                      result: CampaignResult) -> List[MeasurementPoint]:
        """Crash-tolerant scheduler; returns leftover points if it gives
        up on multiprocessing (the caller finishes them serially)."""
        policy = self.policy
        # (points, not_before): a task and the earliest monotonic time it
        # may start (backoff for retried points, 0 for fresh work).
        ready: List[Tuple[List[MeasurementPoint], float]] = [
            (list(group), 0.0) for group in groups]
        running: List[_Worker] = []
        infra_failures = 0  # consecutive crashes/timeouts across workers

        def requeue(points: List[MeasurementPoint], when: float) -> None:
            if points:
                ready.append((points, when))

        def attempt_failed(worker: _Worker, kind: str, detail: str) -> None:
            """A worker died/was reaped: charge its in-flight point."""
            remaining = worker.remaining
            if not remaining:
                return
            victim, rest = remaining[0], remaining[1:]
            if self._register_failure(victim, kind, detail, attempts, result):
                requeue([victim], time.monotonic()
                        + policy.backoff(attempts[victim]))
            requeue(rest, 0.0)  # innocent bystanders: no attempt charged

        def reap(worker: _Worker) -> None:
            worker.process.terminate()
            worker.process.join()
            worker.conn.close()

        try:
            while ready or running:
                now = time.monotonic()

                # Spawn runnable tasks into free slots.
                for entry in list(ready):
                    if len(running) >= jobs:
                        break
                    points, not_before = entry
                    if not_before > now:
                        continue
                    ready.remove(entry)
                    running.append(self._spawn(points, attempts))

                if not running:
                    # Everything pending is backing off; sleep toward the
                    # earliest start time.
                    earliest = min(nb for _points, nb in ready)
                    time.sleep(min(max(0.0, earliest - now),
                                   _SCHEDULER_TICK))
                    continue

                readable = mpconnection.wait(
                    [worker.conn for worker in running],
                    timeout=_SCHEDULER_TICK)
                now = time.monotonic()

                for worker in list(running):
                    if worker.conn not in readable:
                        continue
                    crashed = False
                    try:
                        while worker.conn.poll():
                            message = worker.conn.recv()
                            tag = message[0]
                            if tag == "ok":
                                _tag, index, payload = message
                                worker.completed.add(index)
                                worker.last_progress = now
                                self.cache.install(
                                    worker.points[index].cache_tuple(),
                                    decode_measurement(payload))
                                result.measured_points += 1
                                infra_failures = 0
                            elif tag == "error":
                                _tag, index, detail = message
                                point = worker.points[index]
                                worker.completed.add(index)
                                worker.last_progress = now
                                if self._register_failure(
                                        point, "error", detail,
                                        attempts, result):
                                    requeue([point], now + policy.backoff(
                                        attempts[point]))
                            elif tag == "done":
                                worker.finished = True
                    except (EOFError, OSError):
                        crashed = not worker.finished

                    if worker.finished:
                        worker.process.join()
                        worker.conn.close()
                        running.remove(worker)
                    elif crashed:
                        worker.process.join()
                        exitcode = worker.process.exitcode
                        worker.conn.close()
                        running.remove(worker)
                        attempt_failed(worker, "crash",
                                       f"worker exited with code {exitcode}")
                        infra_failures += 1

                # Reap workers that stopped making progress.
                if policy.point_timeout is not None:
                    for worker in list(running):
                        if now - worker.last_progress <= policy.point_timeout:
                            continue
                        running.remove(worker)
                        reap(worker)
                        attempt_failed(
                            worker, "timeout",
                            f"no progress in {policy.point_timeout:g}s")
                        infra_failures += 1

                if infra_failures >= policy.degrade_after:
                    # Workers keep dying: stop trusting multiprocessing.
                    leftover: List[MeasurementPoint] = []
                    for worker in running:
                        reap(worker)
                        leftover.extend(worker.remaining)
                    running.clear()
                    for points, _not_before in ready:
                        leftover.extend(points)
                    return leftover
        except KeyboardInterrupt:
            for worker in running:
                worker.process.terminate()
            for worker in running:
                worker.process.join()
                worker.conn.close()
            raise
        return []
