"""Campaign layer: enumerate, parallelize and prefetch measurements.

A *campaign* is the set of (workload x core x walker-count) measurement
points an experiment selection needs.  Figures share points (Figure 10's
speedups reuse Figure 9's runs; Figure 11 aggregates both), so the CLI
first asks every selected driver to declare its points, dedups them, and
prefetches the misses — optionally across worker processes — before any
driver runs.  The drivers then execute unchanged against a warm
:class:`~repro.harness.runner.MeasurementCache`.

**Determinism.**  The simulator is deterministic given a seed, and each
measurement is hermetic: offloads release their scratch output regions
(see :meth:`repro.mem.layout.AddressSpace.release`), so a point measures
identically whether it runs first, last, alone or in another process.
Serial, parallel and cache-hit runs therefore produce bit-identical
reports.  Points are still grouped per workload — one index build serves
the whole group — and measured in the drivers' canonical order (baselines
first, then Widx by ascending walker count).

Parallel results cross process boundaries as the same JSON payloads the
persistent store uses (:mod:`repro.harness.cachestore`); JSON floats
round-trip exactly, so no precision is lost on the way back.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..workloads.queryspec import QuerySpec
from .cachestore import decode_measurement, encode_measurement
from .runner import MeasurementCache, RunSettings

#: Baselines measure before offloads; OoO before in-order (driver order).
_CORE_ORDER = {"ooo": 0, "inorder": 1}


@dataclass(frozen=True)
class MeasurementPoint:
    """One simulator run a figure needs: a workload on a core or on Widx."""

    kind: str          # "kernel" | "query"
    name: str          # kernel size ("Small") or query id ("tpch:20")
    op: str            # "baseline" | "widx"
    core: str = ""     # baseline only: "ooo" | "inorder"
    walkers: int = 0   # widx only
    mode: str = ""     # widx only: Widx organization

    def cache_tuple(self) -> Tuple:
        """The :class:`MeasurementCache` key this point populates."""
        if self.op == "baseline":
            return ("baseline", self.kind, self.name, self.core)
        return ("widx", self.kind, self.name, self.walkers, self.mode)

    @property
    def workload(self) -> Tuple[str, str]:
        return (self.kind, self.name)

    def order_key(self) -> Tuple:
        """Canonical within-workload measurement order (see module doc)."""
        if self.op == "baseline":
            return (0, _CORE_ORDER.get(self.core, 99), self.core)
        return (1, self.walkers, self.mode)


def baseline_point(kind: str, name: str, core: str) -> MeasurementPoint:
    """A baseline-core measurement point."""
    return MeasurementPoint(kind=kind, name=name, op="baseline", core=core)


def widx_point(kind: str, name: str, walkers: int,
               mode: str = "shared") -> MeasurementPoint:
    """A Widx-offload measurement point."""
    return MeasurementPoint(kind=kind, name=name, op="widx",
                            walkers=walkers, mode=mode)


def kernel_points(sizes: Iterable[str], walker_counts: Iterable[int],
                  ) -> List[MeasurementPoint]:
    """Points for the hash-join kernel figures (8a/8b)."""
    points = []
    for size in sizes:
        points.append(baseline_point("kernel", size, "ooo"))
        for walkers in walker_counts:
            points.append(widx_point("kernel", size, walkers))
    return points


def query_points(specs: Iterable[QuerySpec], walker_counts: Iterable[int],
                 include_inorder: bool = False) -> List[MeasurementPoint]:
    """Points for the DSS-query figures (9/10/11)."""
    points = []
    for spec in specs:
        name = f"{spec.benchmark}:{spec.number}"
        points.append(baseline_point("query", name, "ooo"))
        if include_inorder:
            points.append(baseline_point("query", name, "inorder"))
        for walkers in walker_counts:
            points.append(widx_point("query", name, walkers))
    return points


def dedup_points(points: Iterable[MeasurementPoint]) -> List[MeasurementPoint]:
    """Unique points, first occurrence wins, order preserved."""
    seen = set()
    unique = []
    for point in points:
        if point not in seen:
            seen.add(point)
            unique.append(point)
    return unique


def group_by_workload(points: Iterable[MeasurementPoint],
                      ) -> List[List[MeasurementPoint]]:
    """Points grouped per workload, each group canonically ordered."""
    groups: Dict[Tuple[str, str], List[MeasurementPoint]] = {}
    for point in dedup_points(points):
        groups.setdefault(point.workload, []).append(point)
    return [sorted(group, key=MeasurementPoint.order_key)
            for _workload, group in sorted(groups.items())]


@dataclass
class CampaignResult:
    """What a prefetch pass did, for reporting."""

    total_points: int = 0
    cached_points: int = 0    # already in memory or the persistent store
    measured_points: int = 0  # simulated this pass
    jobs: int = 1

    def summary(self) -> str:
        """One-line human-readable account (printed by the CLI)."""
        return (f"campaign: {self.total_points} points, "
                f"{self.cached_points} cached, "
                f"{self.measured_points} measured, jobs={self.jobs}")


def _measure_group(args: Tuple[SystemConfig, RunSettings,
                               Sequence[MeasurementPoint]]):
    """Worker: measure one workload's points in canonical order.

    Runs in a separate process; results travel back as JSON payloads
    (module-level so it pickles under every multiprocessing start method).
    """
    config, runs, points = args
    cache = MeasurementCache(config=config, runs=runs)
    return [(point, encode_measurement(_measure_point(cache, point)))
            for point in points]


def _measure_point(cache: MeasurementCache, point: MeasurementPoint):
    if point.op == "baseline":
        return cache.baseline(point.kind, point.name, point.core)
    return cache.widx(point.kind, point.name, point.walkers, point.mode)


def default_jobs() -> int:
    """The CLI default for ``--jobs``: every available core."""
    return os.cpu_count() or 1


class Campaign:
    """Prefetches a point set into a :class:`MeasurementCache`."""

    def __init__(self, cache: MeasurementCache) -> None:
        self.cache = cache

    def run(self, points: Iterable[MeasurementPoint],
            jobs: Optional[int] = None) -> CampaignResult:
        """Ensure every point is cached; fan misses out over ``jobs``."""
        unique = dedup_points(points)
        jobs = default_jobs() if jobs is None else max(1, jobs)
        result = CampaignResult(total_points=len(unique), jobs=jobs)

        # fetch() pulls persistent-store hits into memory as a side effect.
        pending = [p for p in unique if self.cache.fetch(p.cache_tuple()) is None]
        result.cached_points = len(unique) - len(pending)
        result.measured_points = len(pending)
        if not pending:
            return result

        groups = group_by_workload(pending)
        if jobs == 1 or len(groups) == 1:
            for group in groups:
                for point in group:
                    _measure_point(self.cache, point)
            return result

        tasks = [(self.cache.config, self.cache.runs, group)
                 for group in groups]
        workers = min(jobs, len(tasks))
        # fork (where available) shares the imported modules; spawn also
        # works since the worker and its arguments are all picklable.
        with multiprocessing.Pool(processes=workers) as pool:
            for group_results in pool.imap_unordered(_measure_group, tasks):
                for point, payload in group_results:
                    self.cache.install(point.cache_tuple(),
                                       decode_measurement(payload))
        return result
