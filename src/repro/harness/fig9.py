"""Figure 9: Widx walker cycle breakdowns on the DSS queries.

* **9a** (TPC-H 2, 11, 17, 19, 20, 22): more Comp than the kernel —
  MonetDB's indirect keys need extra address arithmetic; cycles per tuple
  fall near-linearly with walkers; TLB stalls (up to 8%) only on the
  memory-intensive queries 19/20/22.
* **9b** (TPC-DS 5, 37, 40, 52, 64, 82): much smaller indexes (TPC-DS has
  429 columns vs TPC-H's 61), so memory time is consistently lower and
  the L1-resident queries (5, 37, 64, 82) leave walkers partially idle.
"""

from __future__ import annotations

from typing import Iterable, List

from ..workloads.queryspec import QuerySpec
from ..workloads.tpcds import TPCDS_SIMULATED
from ..workloads.tpch import TPCH_SIMULATED
from .campaign import MeasurementPoint, query_points
from .report import Report
from .runner import MeasurementCache, measure_query


def points_fig9a(walker_counts: Iterable[int] = (1, 2, 4),
                 ) -> "List[MeasurementPoint]":
    """Measurement points Figure 9a needs."""
    return query_points(TPCH_SIMULATED, walker_counts)


def points_fig9b(walker_counts: Iterable[int] = (1, 2, 4),
                 ) -> "List[MeasurementPoint]":
    """Measurement points Figure 9b needs."""
    return query_points(TPCDS_SIMULATED, walker_counts)


def _run(cache: MeasurementCache, queries: List[QuerySpec], title: str,
         walker_counts: Iterable[int]) -> Report:
    report = Report(
        title=title,
        columns=["query", "walkers", "comp", "mem", "tlb", "idle", "total"])
    for spec in queries:
        measurement = measure_query(cache, spec, walker_counts)
        for walkers in walker_counts:
            breakdown = measurement.walker_breakdown(walkers)
            idle = breakdown.idle + breakdown.queue
            total = breakdown.comp + breakdown.mem + breakdown.tlb + idle
            report.add_row(spec.label, walkers, breakdown.comp,
                           breakdown.mem, breakdown.tlb, idle, total)
    return report


def run_fig9a(cache: MeasurementCache,
              walker_counts: Iterable[int] = (1, 2, 4)) -> Report:
    """Figure 9a: TPC-H walker cycle breakdowns."""
    report = _run(cache, TPCH_SIMULATED,
                  "Figure 9a: TPC-H walker cycles per tuple (Comp/Mem/TLB/Idle)",
                  list(walker_counts))
    report.add_note("paper: queries 2/11/17 see no TLB misses; 19/20/22 "
                    "spend up to 8% of walker cycles in TLB stalls")
    return report


def run_fig9b(cache: MeasurementCache,
              walker_counts: Iterable[int] = (1, 2, 4)) -> Report:
    """Figure 9b: TPC-DS walker cycle breakdowns."""
    report = _run(cache, TPCDS_SIMULATED,
                  "Figure 9b: TPC-DS walker cycles per tuple (Comp/Mem/TLB/Idle)",
                  list(walker_counts))
    report.add_note("paper: consistently lower memory time than TPC-H; "
                    "L1-resident queries (5/37/64/82) show walker Idle")
    return report
