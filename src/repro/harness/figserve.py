"""The serving figure: throughput–latency curves per indexing backend.

Not a figure from the paper — the paper measures one-shot bulk probes —
but the question its Section 6 results raise for a serving layer: at
what offered load does each backend's tail latency take off, and how
much more load does Widx sustain than a baseline core?

Method (see EXPERIMENTS.md): service times are *calibrated* per
(backend, batch size) on the detailed simulators — those are this
figure's campaign points, cached and parallelized like every other
figure's — and the open-loop queueing composition
(:mod:`repro.serve.simulate`) then sweeps offered load as a fraction of
each backend's saturation rate.  The sweep itself is deterministic given
the run seed, so serial, ``--jobs N`` and cache-hit campaigns render
bit-identical reports.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..serve.control import parse_controller
from ..serve.policies import parse_policy
from ..serve.service import ServiceModel
from ..serve.simulate import ResilienceConfig, ServeResult, run_open_loop
from .campaign import MeasurementPoint, serve_point
from .report import Report
from .runner import MeasurementCache

#: The serving workload: probe batches against the Small hash-join kernel
#: (shares its index build with the Figure 8 campaign points).
SERVE_KIND = "kernel"
SERVE_NAME = "Small"

#: Probe keys per client request.
KEYS_PER_REQUEST = 8

#: Calibrated batch sizes, in requests per served batch.
CALIBRATED_BATCHES = (1, 2, 4)

#: Backends swept: the in-order baseline core and Widx at 1/2/4 walkers.
BACKENDS: Tuple[Tuple[str, str, int, str], ...] = (
    ("inorder", "inorder", 0, ""),
    ("widx-1", "widx", 1, "shared"),
    ("widx-2", "widx", 2, "shared"),
    ("widx-4", "widx", 4, "shared"),
)

#: The bank-side walker backend added by ``--pim``: same walker count as
#: the strongest Widx column, attached at the DRAM banks.
PIM_BACKEND: Tuple[str, str, int, str] = ("pim-4", "pim", 4, "shared")

#: The level-wise batched B+-tree backend added by ``--batched-tree``:
#: coupled-mode walkers sharing each served batch's node visits.  It is
#: calibrated on the ordered-index zoo's Small B+-tree rather than the
#: hash kernel, so its rows answer how an ordered index serves under the
#: same open-loop composition.
BATCHED_BACKEND: Tuple[str, str, int, str] = ("batched-4", "batched", 4,
                                              "coupled")

#: The workload the batched backend calibrates against.
BATCHED_KIND = "ordered"
BATCHED_NAME = "batched:Small"

#: Offered load sweep, as fractions of each backend's saturation rate.
LOAD_FRACTIONS = (0.3, 0.5, 0.7, 0.85, 0.95)

#: Requests per sweep step (per offered-load level).
SWEEP_REQUESTS = 512


def _backends(include_pim: bool, include_batched: bool = False
              ) -> Tuple[Tuple[str, str, int, str], ...]:
    """The swept backends, with opt-in columns appended on request."""
    extra: Tuple[Tuple[str, str, int, str], ...] = ()
    if include_pim:
        extra += (PIM_BACKEND,)
    if include_batched:
        extra += (BATCHED_BACKEND,)
    return BACKENDS + extra


def _workload_for(backend: str) -> Tuple[str, str]:
    """The (kind, name) a backend's calibration runs against."""
    if backend == "batched":
        return BATCHED_KIND, BATCHED_NAME
    return SERVE_KIND, SERVE_NAME


def points_fig_serve(include_pim: bool = False,
                     include_batched: bool = False
                     ) -> List[MeasurementPoint]:
    """The calibration measurements the serving sweep needs."""
    points = []
    for _label, backend, walkers, mode in _backends(include_pim,
                                                    include_batched):
        kind, name = _workload_for(backend)
        for batch in CALIBRATED_BATCHES:
            points.append(serve_point(kind, name, backend,
                                      batch * KEYS_PER_REQUEST,
                                      walkers, mode))
    return points


def service_model(cache: MeasurementCache, label: str, backend: str,
                  walkers: int, mode: str) -> ServiceModel:
    """Build one backend's service model from cached calibrations."""
    kind, name = _workload_for(backend)
    measurements = [
        cache.service(kind, name, backend,
                      batch * KEYS_PER_REQUEST, walkers, mode)
        for batch in CALIBRATED_BATCHES
    ]
    return ServiceModel.from_measurements(label, KEYS_PER_REQUEST,
                                          measurements)


def sweep_backend(cache: MeasurementCache, model: ServiceModel,
                  policy_spec: str,
                  load_fractions: Iterable[float] = LOAD_FRACTIONS,
                  bulk: bool = False,
                  resilience: Optional[ResilienceConfig] = None
                  ) -> List[ServeResult]:
    """Sweep offered load for one backend; one ServeResult per level.

    ``bulk=True`` runs each level through the array replay
    (:mod:`repro.serve.bulk`) — bit-identical, with automatic fallback
    to the discrete-event path on ambiguous schedules.  ``resilience``
    routes each level through the resilient serving path (SLO
    accounting, degraded-mode controller).
    """
    cores = cache.config.num_cores
    saturation = cores * model.saturation_rate()
    results = []
    for fraction in load_fractions:
        policy = parse_policy(policy_spec)  # fresh instance per run
        results.append(run_open_loop(
            model, rate=fraction * saturation, num_requests=SWEEP_REQUESTS,
            policy=policy, cores=cores, seed=cache.runs.seed, bulk=bulk,
            resilience=resilience))
    return results


def run_fig_serve(cache: MeasurementCache,
                  policy_spec: str = "fifo",
                  bulk: bool = False,
                  slo: Optional[float] = None,
                  controller_spec: Optional[str] = None,
                  include_pim: bool = False,
                  include_batched: bool = False) -> Report:
    """The serving figure: offered load vs achieved throughput and
    latency percentiles, per backend.

    ``slo`` (cycles) adds goodput/shed columns via the resilient serving
    path; ``controller_spec`` (see :func:`~repro.serve.control
    .parse_controller`) additionally closes the degraded-mode control
    loop.  ``include_pim`` sweeps the bank-side walker backend alongside
    the others (``--pim``) — its service times carry the per-batch
    host↔PIM launch latency, so it answers whether near-memory wins
    survive a serving workload's small batches.  ``include_batched``
    sweeps the level-wise batched B+-tree backend (``--batched-tree``),
    calibrated on the ordered-index zoo's Small tree.  All default off,
    leaving the report byte-identical to the pre-resilience figure.
    """
    parse_policy(policy_spec)  # fail fast on a bad spec
    resilience = None
    if slo is not None or controller_spec is not None:
        controller = (parse_controller(controller_spec)
                      if controller_spec is not None else None)
        resilience = ResilienceConfig(slo=slo, controller=controller)
    columns = ["backend", "load", "offered", "achieved", "p50", "p95", "p99"]
    title_extra = ""
    if resilience is not None:
        columns += ["goodput", "shed"]
        title_extra = f", slo={slo:g}"
        if controller_spec is not None:
            title_extra += f", controller={controller_spec}"
    report = Report(
        title=f"Serving: open-loop throughput vs latency on the "
              f"{SERVE_NAME} kernel ({KEYS_PER_REQUEST} keys/request, "
              f"policy={policy_spec}{title_extra})",
        columns=columns)
    backends = _backends(include_pim, include_batched)
    saturations = {}
    for label, backend, walkers, mode in backends:
        model = service_model(cache, label, backend, walkers, mode)
        cores = cache.config.num_cores
        saturations[label] = cores * model.saturation_rate()
        for result in sweep_backend(cache, model, policy_spec, bulk=bulk,
                                    resilience=resilience):
            row = [label, round(result.offered / saturations[label], 2),
                   result.offered, result.achieved,
                   result.p50, result.p95, result.p99]
            if resilience is not None:
                row += [round(result.goodput, 4), result.shed]
            report.add_row(*row)
    for label, _backend, _walkers, _mode in backends:
        report.add_note(
            f"{label}: saturation {saturations[label]:.3f} requests/kcycle "
            f"across {cache.config.num_cores} cores")
    inorder_sat = saturations["inorder"]
    widx_sat = saturations["widx-1"]
    report.add_note(
        f"widx-1 sustains {widx_sat / inorder_sat:.2f}x the in-order "
        f"saturation load at equal walker/core count"
        + ("" if widx_sat > inorder_sat else " (UNEXPECTED: not faster)"))
    if include_pim:
        pim_label = PIM_BACKEND[0]
        widx_peer = f"widx-{PIM_BACKEND[2]}"
        ratio = saturations[pim_label] / saturations[widx_peer]
        report.add_note(
            f"{pim_label} sustains {ratio:.2f}x the {widx_peer} saturation "
            f"load (per-batch host-to-PIM launch included)")
    if include_batched:
        batched_label = BATCHED_BACKEND[0]
        report.add_note(
            f"{batched_label}: level-wise batched traversals of the "
            f"{BATCHED_NAME} B+-tree ({saturations[batched_label]:.3f} "
            f"requests/kcycle at saturation; per-batch offload "
            f"configuration included)")
    report.add_note("latencies in cycles; load is the fraction of each "
                    "backend's own saturation rate")
    return report
