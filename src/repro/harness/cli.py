"""Command-line driver: regenerate any paper artifact from a shell.

Usage::

    python -m repro --list
    python -m repro --figure 8b
    python -m repro --figure 10 --probes 3000 --warmup 600
    python -m repro --all --jobs 4 --cache-dir ~/.cache/repro

Before any simulated figure runs, a campaign pre-pass enumerates every
measurement point the selection needs, dedups the overlap between figures,
and fans the misses out over ``--jobs`` worker processes.  With
``--cache-dir`` the measurements persist on disk, so a repeated or resumed
invocation reports cache hits instead of re-simulating.

The campaign is fault-tolerant: crashed or wedged workers forfeit only
their in-flight point, which retries up to ``--retries`` times with
exponential backoff (``--point-timeout`` bounds how long a silent worker
is trusted).  Points that exhaust their retries land in a failure
manifest and the surviving figures still render.  ``--chaos SEED``
deterministically injects worker kills, hangs, measurement errors and
cache corruption to exercise exactly those paths.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict
from typing import Dict, List, Optional

from ..errors import CampaignInterrupted, MeasurementFailed, ServeError
from ..obs import Tracer, Trail
from ..serve.control import parse_controller
from ..serve.policies import parse_policy
from .campaign import Campaign, MeasurementPoint, RetryPolicy, default_jobs
from .cachestore import CacheStore
from .chaos import ChaosSpec, ChaosStore
from .report import Report, failure_report
from .runner import MeasurementCache, RunSettings
from . import (fig2, fig4, fig5, fig8, fig9, fig10, fig11, figindexes,
               figpim, figresilience, figserve)

#: Experiment registry: name -> (needs_measurements, runner, points).
#: ``points`` declares the measurement points the runner will consume so
#: the campaign pre-pass can prefetch them; ``None`` for analytic figures.
EXPERIMENTS: Dict[str, tuple] = {
    "2a": (False, lambda cache: fig2.run_fig2a(), None),
    "2b": (False, lambda cache: fig2.run_fig2b(), None),
    "4a": (False, lambda cache: fig4.run_fig4a(), None),
    "4b": (False, lambda cache: fig4.run_fig4b(), None),
    "4c": (False, lambda cache: fig4.run_fig4c(), None),
    "5": (False, lambda cache: fig5.run_fig5(), None),
    "8a": (True, fig8.run_fig8a, fig8.points_fig8),
    "8b": (True, fig8.run_fig8b, fig8.points_fig8),
    "9a": (True, fig9.run_fig9a, fig9.points_fig9a),
    "9b": (True, fig9.run_fig9b, fig9.points_fig9b),
    "10": (True, fig10.run_fig10, fig10.points_fig10),
    "query-level": (True, fig10.run_query_level, fig10.points_query_level),
    "11": (True, fig11.run_fig11, fig11.points_fig11),
    "area": (False, lambda cache: fig11.run_area(), None),
    "serve": (True, figserve.run_fig_serve, figserve.points_fig_serve),
    "resilience": (True, figresilience.run_fig_resilience,
                   figresilience.points_fig_resilience),
    "pim": (True, figpim.run_fig_pim, figpim.points_fig_pim),
    "indexes": (True, figindexes.run_fig_indexes,
                figindexes.points_fig_indexes),
}

#: Experiments whose point declarations and runners grow a bank-side
#: walker column under ``--pim`` (the ``pim`` figure itself always runs
#: the PIM sweep and needs no flag).
PIM_AWARE = ("8b", "serve", "resilience")

#: Experiments whose point declarations and runners grow a batched
#: B+-tree backend column under ``--batched-tree`` (the ``indexes``
#: figure always sweeps the batched traversal and needs no flag).
BATCHED_AWARE = ("serve",)

_FAST = {name for name, (needs, _, _) in EXPERIMENTS.items() if not needs}


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables and figures from 'Meet the Walkers' "
                    "(MICRO 2013).")
    parser.add_argument("--figure", action="append", dest="figures",
                        metavar="ID",
                        help="experiment id (repeatable); a bare figure "
                             "number like 'fig8' or '8' selects every "
                             "panel; see --list")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--fast", action="store_true",
                        help="run only the analytic (sub-second) experiments")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--probes", type=int, default=3000,
                        help="probe keys per measured configuration")
    parser.add_argument("--warmup", type=int, default=600,
                        help="warm-up probes excluded from measurement")
    parser.add_argument("--seed", type=int, default=42,
                        help="workload generation seed")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the measurement campaign "
                             "(default: all cores)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist measurements under DIR; repeated runs "
                             "reuse them instead of re-simulating")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir (measure everything fresh)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retry attempts per failing measurement point "
                             "(default: 2)")
    parser.add_argument("--point-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="reap a campaign worker that makes no progress "
                             "for this long (default: no timeout)")
    parser.add_argument("--chaos", type=int, default=None, metavar="SEED",
                        help="inject deterministic faults seeded by SEED "
                             "(kills, hangs, errors, store corruption) to "
                             "exercise the recovery paths")
    parser.add_argument("--chaos-rate", type=float, default=0.25, metavar="R",
                        help="per-fault-site injection probability for "
                             "--chaos (default: 0.25)")
    parser.add_argument("--pim", action="store_true",
                        help="add the bank-side walker backend (near-memory "
                             "PIM) as an extra column in fig8b, fig-serve "
                             "and fig-resilience; the dedicated fig-pim "
                             "sweep runs it regardless")
    parser.add_argument("--batched-tree", action="store_true",
                        dest="batched_tree",
                        help="add the level-wise batched B+-tree backend as "
                             "an extra column in fig-serve; the fig-indexes "
                             "sweep runs it regardless")
    parser.add_argument("--bulk", action="store_true",
                        help="evaluate independent probes and requests as "
                             "array programs instead of event streams "
                             "(bit-identical results; contended schedules "
                             "automatically fall back to the event engine)")
    parser.add_argument("--serve-policy", default="fifo", metavar="SPEC",
                        dest="serve_policy",
                        help="scheduling policy for the fig-serve sweep: "
                             "'fifo', 'size:N' or 'deadline:CYCLES[:N]' "
                             "(default: fifo)")
    parser.add_argument("--serve-slo", type=float, default=None,
                        metavar="CYCLES", dest="serve_slo",
                        help="latency SLO in cycles for the fig-serve sweep; "
                             "adds goodput/shed columns via the resilient "
                             "serving path (default: off)")
    parser.add_argument("--serve-controller", default=None, metavar="SPEC",
                        dest="serve_controller",
                        help="degraded-mode controller for the fig-serve "
                             "sweep: 'p99:WINDOW[:BREACH[:RECOVER[:ACTION]]]' "
                             "(needs --serve-slo; default: off)")
    parser.add_argument("--stats-json", default=None, metavar="PATH",
                        dest="stats_json",
                        help="write the merged stats-registry snapshot and "
                             "the reports as JSON to PATH")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a Chrome trace-event file of one Widx "
                             "offload (open in about:tracing / Perfetto)")
    parser.add_argument("--trails", type=int, default=None, metavar="N",
                        help="with --trace: capture per-request walker "
                             "trails (each LD hop's address and cache "
                             "level; the last N kept) into the trace file "
                             "and the --stats-json payload")
    return parser


def resolve_figures(raw: List[str]) -> List[str]:
    """Expand user-supplied ``--figure`` tokens to experiment ids.

    Accepts exact ids (``8b``), ids with a ``fig`` prefix (``fig8b``,
    ``fig-serve``, ``fig-pim``) and bare figure numbers (``8`` or
    ``fig8``), which select every lettered panel (``8a`` and ``8b``).
    Panel expansion applies only to all-digit tokens — anything else must
    match an id exactly, so a typo like ``--figure s`` is rejected
    instead of silently selecting ``serve``.  Raises :class:`ValueError`
    naming the bad token and the valid ids when nothing matches.
    Duplicates are dropped, first occurrence wins.
    """
    names: List[str] = []
    for token in raw:
        cleaned = token.strip().lower()
        if cleaned.startswith("fig"):
            # Accept both 'fig8b' and hyphenated verbs like 'fig-serve'.
            cleaned = cleaned[3:].lstrip("-")
        if cleaned in EXPERIMENTS:
            matches = [cleaned]
        elif cleaned.isdigit():
            # A bare figure number selects all of its lettered panels.
            matches = sorted(
                name for name in EXPERIMENTS
                if name.startswith(cleaned) and name[len(cleaned):].isalpha())
        else:
            matches = []
        if not matches:
            known = ", ".join(sorted(EXPERIMENTS, key=_sort_key))
            raise ValueError(
                f"unknown figure {token!r} (choose from: {known})")
        for name in matches:
            if name not in names:
                names.append(name)
    return names


def list_experiments() -> str:
    """Human-readable list of experiment ids and kinds."""
    lines = ["available experiments:"]
    for name in sorted(EXPERIMENTS, key=_sort_key):
        needs, _, _ = EXPERIMENTS[name]
        kind = "simulation" if needs else "analytic"
        lines.append(f"  {name:<12} ({kind})")
    return "\n".join(lines)


def _sort_key(name: str):
    digits = "".join(ch for ch in name if ch.isdigit())
    return (int(digits) if digits else 99, name)


def campaign_points(names: List[str],
                    pim: bool = False,
                    batched: bool = False) -> List[MeasurementPoint]:
    """Every measurement point the named experiments declare (with dups).

    ``pim`` forwards ``include_pim=True`` to the experiments in
    :data:`PIM_AWARE` and ``batched`` forwards ``include_batched=True``
    to those in :data:`BATCHED_AWARE`, so the opt-in backend columns are
    prefetched alongside the host-side points.
    """
    points: List[MeasurementPoint] = []
    for name in names:
        _needs, _runner, declare = EXPERIMENTS[name]
        if declare is not None:
            kwargs = {}
            if pim and name in PIM_AWARE:
                kwargs["include_pim"] = True
            if batched and name in BATCHED_AWARE:
                kwargs["include_batched"] = True
            points.extend(declare(**kwargs))
    return points


def run_experiments(names: List[str], settings: RunSettings,
                    out=sys.stdout, store: Optional[CacheStore] = None,
                    jobs: int = 1, policy: Optional[RetryPolicy] = None,
                    chaos: Optional[ChaosSpec] = None,
                    stats_json: Optional[str] = None,
                    trace: Optional[str] = None,
                    serve_policy: str = "fifo",
                    bulk: bool = False,
                    serve_slo: Optional[float] = None,
                    serve_controller: Optional[str] = None,
                    trails: Optional[int] = None,
                    pim: bool = False,
                    batched: bool = False) -> List[Report]:
    """Run the named experiments, printing each report.

    A campaign pre-pass prefetches every declared measurement point
    (parallel across workloads when ``jobs > 1``) so the figure drivers
    below only read the warm cache.  A campaign with failed points still
    renders every figure it can: a driver whose points are poisoned is
    reported as failed (with the failure manifest) instead of aborting
    the whole run.

    ``pim`` threads ``include_pim=True`` through the point declarations
    and runners of the :data:`PIM_AWARE` figures, adding the bank-side
    walker column (``--pim``); ``batched`` does the same for
    :data:`BATCHED_AWARE` via ``include_batched=True``
    (``--batched-tree``); other figures ignore them.

    ``stats_json`` writes the merged stats-registry snapshot plus every
    report (via :meth:`Report.to_dict`) as JSON; ``trace`` re-runs one
    Widx point with a :class:`~repro.obs.Tracer` attached and writes a
    Chrome trace-event file.  ``trails`` (with ``trace``) additionally
    captures per-request walker trails during that drill: the last N
    traversal paths land as per-hop spans in the trace file and, when
    ``stats_json`` is also given, as a ``trails`` object in the payload.
    """
    if chaos is not None and store is not None:
        store = ChaosStore(store, chaos)
    cache = MeasurementCache(runs=settings, store=store, bulk=bulk)
    points = campaign_points(names, pim=pim, batched=batched)
    failures = []
    if points:
        started = time.time()
        result = Campaign(cache, policy=policy, chaos=chaos).run(
            points, jobs=jobs)
        elapsed = time.time() - started
        print(f"[{result.summary()}, {elapsed:.1f}s]\n", file=out)
        failures = result.failures
    reports = []
    for name in names:
        _needs, runner, _points = EXPERIMENTS[name]
        started = time.time()
        try:
            # The serving sweeps are the drivers with tunables beyond
            # the cache: scheduling policy, SLO, and controller.
            if name == "serve":
                report = runner(cache, serve_policy, bulk=bulk,
                                slo=serve_slo,
                                controller_spec=serve_controller,
                                include_pim=pim,
                                include_batched=batched)
            elif name == "resilience":
                report = runner(cache, bulk=bulk, include_pim=pim)
            elif pim and name in PIM_AWARE:
                report = runner(cache, include_pim=True)
            else:
                report = runner(cache)
        except MeasurementFailed as exc:
            elapsed = time.time() - started
            print(f"[{name}: FAILED after {elapsed:.1f}s — {exc}]\n",
                  file=out)
            continue
        elapsed = time.time() - started
        print(report.format(), file=out)
        print(f"[{name}: {elapsed:.1f}s]\n", file=out)
        reports.append(report)
    if failures:
        print(failure_report(failures).format(), file=out)
        print(file=out)
    trail = None
    if trace is not None:
        trail = _trace_drill(cache, points, trace, out, trails=trails)
    if stats_json is not None:
        _write_stats_json(stats_json, names, settings, cache, reports,
                          failures, out, trail=trail)
    return reports


def _write_stats_json(path: str, names: List[str], settings: RunSettings,
                      cache: MeasurementCache, reports: List[Report],
                      failures, out, trail: Optional[Trail] = None) -> None:
    """Serialize the run's statistics and reports to one JSON file.

    Volatile campaign accounting (wall-clock, worker counts, store hit
    rates) is deliberately excluded so the payload stays deterministic
    for a given selection, settings and seed.
    """
    payload = {
        "format": 1,
        "experiments": list(names),
        "settings": asdict(settings),
        "registry": cache.merged_stats().to_dict(),
        "reports": [report.to_dict() for report in reports],
    }
    if failures:
        payload["failures"] = failure_report(failures).to_dict()
    if trail is not None:
        payload["trails"] = trail.to_dict()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[stats written to {path}]", file=out)


def _trace_drill(cache: MeasurementCache, points: List[MeasurementPoint],
                 path: str, out,
                 trails: Optional[int] = None) -> Optional[Trail]:
    """Re-run the selection's first Widx point with a tracer attached.

    Traces are a drill-down artifact, not a campaign output: cached
    measurements never re-simulate, so the drill re-runs exactly one
    offload in-process with the same workload, settings and seed.  With
    no Widx point in the selection an empty (but valid) trace is still
    written.

    ``trails`` additionally hooks a bounded :class:`~repro.obs.Trail`
    ring (capacity ``trails``) onto the drill's walkers; the captured
    traversal paths are folded into the trace file as per-hop spans and
    the Trail is returned for the ``--stats-json`` payload.
    """
    from ..widx.offload import offload_probe

    target = next((p for p in points if p.op == "widx"), None)
    tracer = Tracer()
    trail = Trail(capacity=trails) if trails is not None else None
    if target is None:
        print(f"[trace: no Widx point in this selection; "
              f"empty trace written to {path}]", file=out)
    else:
        index, probes = (
            cache.kernel_workload(target.name) if target.kind == "kernel"
            else cache.query_workload(cache._spec_by_name(target.name)))
        config = cache.config.with_widx(num_walkers=target.walkers,
                                        mode=target.mode)
        started = time.time()
        offload_probe(index, probes, config=config,
                      probes=cache.runs.probes, tracer=tracer, trail=trail)
        elapsed = time.time() - started
        captured = ""
        if trail is not None:
            trail.feed_tracer(tracer)
            captured = f" ({len(trail)} trails captured)"
        print(f"[trace: {'/'.join(map(str, target.cache_tuple()))} "
              f"re-simulated in {elapsed:.1f}s; {tracer.num_events} events "
              f"written to {path}{captured}]", file=out)
    tracer.write(path)
    return trail


def main(argv: Optional[List[str]] = None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        print(list_experiments(), file=out)
        return 0
    if args.all:
        names = sorted(EXPERIMENTS, key=_sort_key)
    elif args.fast:
        names = sorted(_FAST, key=_sort_key)
    elif args.figures:
        try:
            names = resolve_figures(args.figures)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
    else:
        parser.print_usage(file=out)
        print("nothing to do: pass --figure ID, --fast, --all or --list",
              file=out)
        return 2
    if args.probes <= args.warmup:
        print("error: --probes must exceed --warmup", file=out)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be >= 1", file=out)
        return 2
    if args.retries < 0:
        print("error: --retries must be >= 0", file=out)
        return 2
    if args.point_timeout is not None and args.point_timeout <= 0:
        print("error: --point-timeout must be positive", file=out)
        return 2
    if not 0.0 <= args.chaos_rate <= 1.0:
        print("error: --chaos-rate must be in [0, 1]", file=out)
        return 2
    if args.trails is not None:
        if args.trails < 1:
            print("error: --trails must be >= 1", file=out)
            return 2
        if args.trace is None:
            print("error: --trails needs --trace (trails are captured "
                  "during the trace drill-down)", file=out)
            return 2
    try:
        parse_policy(args.serve_policy)
        if args.serve_controller is not None:
            parse_controller(args.serve_controller)
            if args.serve_slo is None:
                print("error: --serve-controller needs --serve-slo",
                      file=out)
                return 2
        if args.serve_slo is not None and not args.serve_slo > 0:
            print("error: --serve-slo must be positive", file=out)
            return 2
    except ServeError as exc:
        print(f"error: {exc}", file=out)
        return 2
    settings = RunSettings(probes=args.probes, warmup=args.warmup,
                           seed=args.seed)
    store = None
    if args.cache_dir and not args.no_cache:
        store = CacheStore(args.cache_dir)
    jobs = default_jobs() if args.jobs is None else args.jobs
    policy = RetryPolicy(max_retries=args.retries,
                         point_timeout=args.point_timeout)
    chaos = None
    if args.chaos is not None:
        rate = args.chaos_rate
        chaos = ChaosSpec(seed=args.chaos, kill_rate=rate, hang_rate=rate,
                          error_rate=rate, io_error_rate=rate,
                          corrupt_rate=rate, hang_seconds=30.0)
        if args.point_timeout is None:
            # Injected hangs need a reaper to be recoverable.
            policy = RetryPolicy(max_retries=max(2, args.retries),
                                 point_timeout=20.0)
    try:
        run_experiments(names, settings, out=out, store=store, jobs=jobs,
                        policy=policy, chaos=chaos,
                        stats_json=args.stats_json, trace=args.trace,
                        serve_policy=args.serve_policy, bulk=args.bulk,
                        serve_slo=args.serve_slo,
                        serve_controller=args.serve_controller,
                        trails=args.trails, pim=args.pim,
                        batched=args.batched_tree)
    except CampaignInterrupted as exc:
        print(f"\n{exc}", file=out)
        return 130
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
