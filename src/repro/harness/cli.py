"""Command-line driver: regenerate any paper artifact from a shell.

Usage::

    python -m repro --list
    python -m repro --figure 8b
    python -m repro --figure 10 --probes 3000 --warmup 600
    python -m repro --all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from .report import Report
from .runner import MeasurementCache, RunSettings
from . import fig2, fig4, fig5, fig8, fig9, fig10, fig11

#: Experiment registry: name -> (needs_measurements, runner).
EXPERIMENTS: Dict[str, tuple] = {
    "2a": (False, lambda cache: fig2.run_fig2a()),
    "2b": (False, lambda cache: fig2.run_fig2b()),
    "4a": (False, lambda cache: fig4.run_fig4a()),
    "4b": (False, lambda cache: fig4.run_fig4b()),
    "4c": (False, lambda cache: fig4.run_fig4c()),
    "5": (False, lambda cache: fig5.run_fig5()),
    "8a": (True, fig8.run_fig8a),
    "8b": (True, fig8.run_fig8b),
    "9a": (True, fig9.run_fig9a),
    "9b": (True, fig9.run_fig9b),
    "10": (True, fig10.run_fig10),
    "query-level": (True, fig10.run_query_level),
    "11": (True, fig11.run_fig11),
    "area": (False, lambda cache: fig11.run_area()),
}

_FAST = {name for name, (needs, _) in EXPERIMENTS.items() if not needs}


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables and figures from 'Meet the Walkers' "
                    "(MICRO 2013).")
    parser.add_argument("--figure", action="append", dest="figures",
                        metavar="ID", choices=sorted(EXPERIMENTS),
                        help="experiment id (repeatable); see --list")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--fast", action="store_true",
                        help="run only the analytic (sub-second) experiments")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--probes", type=int, default=3000,
                        help="probe keys per measured configuration")
    parser.add_argument("--warmup", type=int, default=600,
                        help="warm-up probes excluded from measurement")
    parser.add_argument("--seed", type=int, default=42,
                        help="workload generation seed")
    return parser


def list_experiments() -> str:
    """Human-readable list of experiment ids and kinds."""
    lines = ["available experiments:"]
    for name in sorted(EXPERIMENTS, key=_sort_key):
        needs, _ = EXPERIMENTS[name]
        kind = "simulation" if needs else "analytic"
        lines.append(f"  {name:<12} ({kind})")
    return "\n".join(lines)


def _sort_key(name: str):
    digits = "".join(ch for ch in name if ch.isdigit())
    return (int(digits) if digits else 99, name)


def run_experiments(names: List[str], settings: RunSettings,
                    out=sys.stdout) -> List[Report]:
    """Run the named experiments, printing each report."""
    cache = MeasurementCache(runs=settings)
    reports = []
    for name in names:
        _needs, runner = EXPERIMENTS[name]
        started = time.time()
        report = runner(cache)
        elapsed = time.time() - started
        print(report.format(), file=out)
        print(f"[{name}: {elapsed:.1f}s]\n", file=out)
        reports.append(report)
    return reports


def main(argv: Optional[List[str]] = None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        print(list_experiments(), file=out)
        return 0
    if args.all:
        names = sorted(EXPERIMENTS, key=_sort_key)
    elif args.fast:
        names = sorted(_FAST, key=_sort_key)
    elif args.figures:
        names = args.figures
    else:
        parser.print_usage(file=out)
        print("nothing to do: pass --figure ID, --fast, --all or --list",
              file=out)
        return 2
    if args.probes <= args.warmup:
        print("error: --probes must exceed --warmup", file=out)
        return 2
    settings = RunSettings(probes=args.probes, warmup=args.warmup,
                           seed=args.seed)
    run_experiments(names, settings, out=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
