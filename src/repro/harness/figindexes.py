"""The ordered-index zoo figure: traversal classes across backends.

Not a figure from the paper — the paper's Widx walks hash tables — but
the question its Section 3 observation ("walkers are traversal machines,
not hash machines") raises: how do the in-order core, the OoO core, and
Widx walkers compare when the structure under the probe stream is an
*ordered* index?  The sweep lines up five traversal classes on one data
recipe:

==========  =========================================================
row         traversal measured
==========  =========================================================
hash        the Figure 8 hash-join kernel (shared campaign points)
btree       per-probe root-to-leaf B+-tree descent
trie        MLP-friendly fixed-stride trie (independent level fetches)
wormhole    hashed MetaTrieHash front-end into a sorted leaf chain
batched     the same B+-tree probed level-wise in key-sorted batches
==========  =========================================================

Each row shows cycles per tuple on the two baseline cores and on four
Widx walkers, plus the Widx speedup over the OoO baseline.  ``btree``
and ``batched`` probe the *same* tree, so their rows isolate the
traversal strategy; ``hash`` rides the Figure 8 cache entries, so a
campaign that already ran ``fig8b`` pays nothing extra for it.
"""

from __future__ import annotations

from typing import List, Tuple

from ..workloads.ordered_kernel import ORDERED_CLASSES
from .campaign import (MeasurementPoint, baseline_point, index_point,
                       widx_point)
from .report import Report
from .runner import MeasurementCache

#: The zoo runs at the LLC-friendly size so every class is probed on an
#: equal-footprint structure (and shares the fig8 Small kernel points).
INDEX_SIZE = "Small"

#: Walker count for the Widx column (the paper's best configuration).
INDEX_WALKERS = 4

#: Rows in sweep order: (row label, index class).  ``hash`` is the
#: Figure 8 kernel; the rest are the ordered zoo.
INDEX_ROWS: Tuple[Tuple[str, str], ...] = (
    ("hash", "hash"),
) + tuple((cls, cls) for cls in ORDERED_CLASSES)


def _widx_mode(index_class: str) -> str:
    """Walker organization per class: the batched traversal needs the
    coupled organization (walkers fetch their own keys level-wise); the
    per-probe classes use the shared dispatcher."""
    return "coupled" if index_class == "batched" else "shared"


def points_fig_indexes() -> List[MeasurementPoint]:
    """The measurement points the ordered-index sweep needs."""
    points = [
        baseline_point("kernel", INDEX_SIZE, "inorder"),
        baseline_point("kernel", INDEX_SIZE, "ooo"),
        widx_point("kernel", INDEX_SIZE, INDEX_WALKERS, "shared"),
    ]
    for cls in ORDERED_CLASSES:
        name = f"{cls}:{INDEX_SIZE}"
        points.append(index_point(name, "inorder"))
        points.append(index_point(name, "ooo"))
        points.append(index_point(name, "widx", INDEX_WALKERS,
                                  _widx_mode(cls)))
    return points


def run_fig_indexes(cache: MeasurementCache) -> Report:
    """The ordered-index zoo: cycles per tuple and Widx speedup per
    traversal class on the Small workload."""
    report = Report(
        title=f"Ordered-index zoo: cycles/tuple by traversal class "
              f"({INDEX_SIZE}, {INDEX_WALKERS} walkers)",
        columns=["index", "inorder", "ooo",
                 f"widx_{INDEX_WALKERS}w", "speedup"])
    rows = {}
    for label, cls in INDEX_ROWS:
        if cls == "hash":
            inorder = cache.baseline("kernel", INDEX_SIZE, "inorder")
            ooo = cache.baseline("kernel", INDEX_SIZE, "ooo")
            outcome = cache.widx("kernel", INDEX_SIZE, INDEX_WALKERS,
                                 "shared")
        else:
            name = f"{cls}:{INDEX_SIZE}"
            inorder = cache.index(name, "inorder")
            ooo = cache.index(name, "ooo")
            outcome = cache.index(name, "widx", INDEX_WALKERS,
                                  _widx_mode(cls))
        speedup = ooo.cycles_per_tuple / outcome.cycles_per_tuple
        rows[label] = (ooo.cycles_per_tuple, outcome.cycles_per_tuple)
        report.add_row(label, inorder.cycles_per_tuple,
                       ooo.cycles_per_tuple, outcome.cycles_per_tuple,
                       speedup)
    report.add_note(
        f"btree vs batched probe the same tree: level-wise batching takes "
        f"the OoO baseline to {rows['batched'][0] / rows['btree'][0]:.2f}x "
        f"and the Widx walk to "
        f"{rows['batched'][1] / rows['btree'][1]:.2f}x of the per-probe "
        f"descent's cycles/tuple")
    report.add_note(
        "trie/wormhole widx walkers traverse real bucket/meta layouts in "
        "simulated memory; every payload is validated against the "
        "functional index")
    report.add_note("speedup = ooo cycles/tuple over widx cycles/tuple "
                    "(per-offload configuration excluded, as in fig8b)")
    return report
