"""Figure 2: where DSS query time goes on MonetDB.

* **2a** — per-query execution-time breakdown into Index / Scan /
  Sort&Join / Other.  Reconstructed from each query's calibrated operator
  volumes pushed through the executor's cost models (the paper's own 2a is
  VTune wall-clock profiling of a 100 GB run we cannot host).
* **2b** — index time split into key hashing vs node-list walking, from
  the first-order per-probe costs of each query's hash function and index
  locality class.

Paper anchors: indexing is 14-94% of execution (TPC-H avg 35%, TPC-DS avg
45%); walking dominates the index time (70% avg, 97% max) but hashing
reaches 68% for L1-resident indexes (queries 5, 37, 82).
"""

from __future__ import annotations

from typing import List

from ..db.cost import DEFAULT_COST_MODEL
from ..workloads.queryspec import IndexClass, QuerySpec, derive_volumes
from ..workloads.tpcds import TPCDS_QUERIES
from ..workloads.tpch import TPCH_QUERIES
from .report import Report

ALL_QUERIES: List[QuerySpec] = TPCH_QUERIES + TPCDS_QUERIES


def run_fig2a(queries: List[QuerySpec] = ALL_QUERIES) -> Report:
    """Per-query operator-time fractions (Figure 2a)."""
    report = Report(
        title="Figure 2a: query execution time breakdown (fractions)",
        columns=["benchmark", "query", "index", "scan", "sortjoin", "other"])
    for spec in queries:
        volumes = derive_volumes(spec)
        cycles = volumes.breakdown(
            DEFAULT_COST_MODEL,
            probe_cycles_per_tuple=spec.index_class.baseline_probe_cycles)
        total = sum(cycles.values())
        report.add_row(spec.benchmark, spec.label,
                       cycles["index"] / total, cycles["scan"] / total,
                       cycles["sortjoin"] / total, cycles["other"] / total)
    for benchmark in ("tpch", "tpcds"):
        fractions = [row[2] for row in report.rows if row[0] == benchmark]
        report.add_note(
            f"{benchmark}: index fraction avg {sum(fractions)/len(fractions):.2f}, "
            f"max {max(fractions):.2f} "
            f"(paper: avg {'0.35' if benchmark == 'tpch' else '0.45'}, "
            f"max {'0.94' if benchmark == 'tpch' else '0.77'})")
    return report


def hash_walk_split(spec: QuerySpec) -> tuple:
    """First-order (hash_cycles, walk_cycles) per probe on the baseline.

    Hashing is an ALU chain (two host ops per mixing step plus bucket
    arithmetic); walking costs one long-latency access per node, priced by
    the index's locality class, plus the indirect key fetch.
    """
    hash_cycles = 2.0 * spec.hash_spec.compute_cycles + 3.0
    node_access = {
        IndexClass.L1: 4.0,
        IndexClass.LLC: 16.0,
        IndexClass.DRAM: 120.0,
    }[spec.index_class]
    nodes = max(1.0, spec.nodes_per_bucket)
    # Indirect layouts fetch the key from the base column as well; that
    # column shares the index's locality class.
    walk_cycles = nodes * (node_access + 2.0) + nodes * node_access * 0.5 + 4.0
    return hash_cycles, walk_cycles


def run_fig2b(queries: List[QuerySpec] = None) -> Report:
    """Index-time split into Hash vs Walk (Figure 2b)."""
    if queries is None:
        queries = [q for q in ALL_QUERIES if q.simulated]
    report = Report(
        title="Figure 2b: index execution time breakdown (fractions)",
        columns=["benchmark", "query", "hash", "walk"])
    for spec in queries:
        hash_cycles, walk_cycles = hash_walk_split(spec)
        total = hash_cycles + walk_cycles
        report.add_row(spec.benchmark, spec.label,
                       hash_cycles / total, walk_cycles / total)
    walks = report.column("walk")
    report.add_note(
        f"walk share avg {sum(walks)/len(walks):.2f}, max {max(walks):.2f} "
        f"(paper: avg 0.70, max 0.97); hash exceeds 50% only for "
        f"L1-resident indexes (paper: queries 5, 37, 82; max 68%)")
    return report
