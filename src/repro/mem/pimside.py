"""Bank-side (PIM) memory path for near-memory walkers.

HashMem-style placement: the walkers live *inside* the memory device,
next to the DRAM banks.  A node hop translates through a small dedicated
TLB, checks a tiny per-vault row-buffer cache, and on a miss reads the
bank array directly — no LLC lookup, no crossbar traversal, no off-chip
channel.  What the walkers gain in hop latency they pay for elsewhere:
bank conflicts serialize (each bank sustains only ``walkers_per_bank``
concurrent accesses, see :class:`~repro.mem.dram.DramBankPorts`), every
emitted result crosses the host interconnect on its way back, and the
host charges an explicit command/launch latency to arm the walkers at
all (modelled in :meth:`~repro.widx.machine.WidxMachine.configuration_cycles`).

Implements the same duck-typed interface as
:class:`~repro.mem.hierarchy.MemoryHierarchy` and
:class:`~repro.mem.llcside.LlcSideMemory`, so the Widx machine runs
unmodified on this placement.  Deliberately has **no** ``llc`` attribute:
there is no shared cache on this path, and the end-of-run sanitizer's
duck typing (:func:`~repro.sim.sanitize.hierarchy_pools`) skips what is
absent.
"""

from __future__ import annotations

from ..config import CacheConfig, SystemConfig, TlbConfig
from .cache import CacheLevel
from .dram import DramBankPorts
from .hierarchy import AccessResult
from .stats import MemoryStats
from .tlb import Tlb

#: The per-vault scratch buffer next to the PIM walkers: effectively the
#: open row buffers plus a small SRAM — tiny, single-cycle, enough MSHRs
#: to cover every bank slot.
PIM_BUFFER = CacheConfig(size_bytes=4 * 1024, block_bytes=64,
                         associativity=4, latency_cycles=1,
                         ports=2, mshrs=16)

#: The dedicated translation logic on the memory side.  Smaller reach
#: than the LLC-side design's (the device has less area to spend), same
#: two-walker page-walk limit — misses still fault into the host MMU
#: machinery over the command interface.
PIM_TLB = TlbConfig(entries=64, page_bytes=64 * 1024, in_flight=2,
                    miss_latency_cycles=35)


class PimBankMemory:
    """Memory path for bank-side walkers: buffer -> DRAM bank, in place.

    Loads and pointer chases never leave the device.  Stores are the
    result-return path: the produced tuple travels back across the host
    interconnect, so their completion time adds the configured
    ``interconnect_cycles`` on top of the bank-side write.
    """

    def __init__(self, cfg: SystemConfig) -> None:
        self.cfg = cfg
        self.tlb = Tlb(PIM_TLB)
        self.l1d = CacheLevel(PIM_BUFFER, "pim-buffer")
        self.banks = DramBankPorts(cfg.pim, cfg.freq_ghz)
        self.stats = MemoryStats()
        self.stats.l1d = self.l1d.stats
        self.stats.tlb = self.tlb.stats

    # -- timed paths -----------------------------------------------------

    def load(self, addr: int, now: float) -> AccessResult:
        """A demand load on the bank-side path."""
        self.stats.loads += 1
        return self._access(addr, now)

    def store(self, addr: int, now: float) -> AccessResult:
        """A store on the bank-side path: the written tuple returns to the
        host over the interconnect, which the completion time charges."""
        self.stats.stores += 1
        result = self._access(addr, now)
        return AccessResult(result.complete + self.cfg.interconnect_cycles,
                            result.tlb_stall, result.level)

    def touch(self, addr: int, now: float) -> AccessResult:
        """A non-binding prefetch on the bank-side path."""
        self.l1d.stats.prefetches += 1
        return self._access(addr, now)

    def _access(self, addr: int, now: float) -> AccessResult:
        translated, tlb_stall = self.tlb.translate(addr, now)
        block = self.l1d.block_of(addr)
        port_time = self.l1d.port_grant(translated)
        outcome = self.l1d.probe(block, port_time)
        if outcome is None:
            return AccessResult(port_time + PIM_BUFFER.latency_cycles,
                                tlb_stall, "L1")
        if outcome >= 0:
            return AccessResult(
                max(outcome, port_time + PIM_BUFFER.latency_cycles),
                tlb_stall, "L1")
        miss_start = self.l1d.begin_miss(port_time)
        # Inside the device: the bank array is one row access away.
        data = self.banks.access(block, miss_start)
        self.stats.dram_blocks += 1
        self.l1d.finish_miss(block, data)
        return AccessResult(data, tlb_stall, "DRAM")

    # -- functional warm-up ------------------------------------------------

    def warm_block(self, addr: int, level: str = "llc") -> None:
        """Install one translation (and optionally a buffer block) with no
        timing effect.

        The ``llc`` level warms only the TLB: the data's home *is* the
        bank array, so there is no larger cache to pre-fill — the paper's
        warmed-checkpoint discipline degenerates to warm translations.
        """
        self.tlb.warm(addr)
        if level in ("l1", "l1d"):
            self.l1d.warm(self.l1d.block_of(addr))
        elif level != "llc":
            raise ValueError(f"unknown warm level {level!r}")

    def warm_range(self, base: int, size: int, level: str = "llc") -> None:
        """Warm every block of a byte range."""
        block_bytes = PIM_BUFFER.block_bytes
        addr = base - (base % block_bytes)
        while addr < base + size:
            self.warm_block(addr, level)
            addr += block_bytes

    # -- observability -----------------------------------------------------

    def register_into(self, registry, prefix: str = "mem",
                      include_shared: bool = True) -> None:
        """Publish every component's counters under ``prefix`` (same
        protocol as :meth:`MemoryHierarchy.register_into`; there is no
        LLC or crossbar on this path)."""
        self.stats.register_into(registry, prefix)
        self.tlb.register_into(registry, f"{prefix}.tlb")
        self.l1d.register_into(registry, f"{prefix}.l1d")
        if include_shared:
            self.banks.register_into(registry, f"{prefix}.dram")
