"""LLC-side Widx placement (Section 7's alternative design point).

The paper weighs moving Widx next to the LLC instead of coupling it to a
core: **advantages** — lower LLC access latency (no crossbar hop) and no
pressure on the core's L1 MSHRs; **disadvantages** — it needs its own
address-translation logic and a dedicated low-latency buffer to recover
the data locality the host L1 used to provide (plus an exception path).

This module models that design: accesses translate through a *dedicated*
TLB, look up a small private buffer (the "dedicated low-latency storage"),
and on a miss go straight to the LLC with no interconnect latency.  The
paper concludes the balance favors the core-coupled design; the ablation
benchmark measures where each placement wins.
"""

from __future__ import annotations

from ..config import CacheConfig, SystemConfig, TlbConfig
from .cache import CacheLevel
from .dram import MemoryControllers
from .hierarchy import AccessResult
from .stats import MemoryStats
from .tlb import Tlb

#: The dedicated buffer next to the LLC-side Widx: small and fast, with a
#: generous MSHR pool (the design is not sharing a core's ten).
LLC_SIDE_BUFFER = CacheConfig(size_bytes=16 * 1024, block_bytes=64,
                              associativity=8, latency_cycles=2,
                              ports=2, mshrs=16)

#: The dedicated translation logic: smaller reach than the host MMU's TLB
#: but with the same two-walker limit (it reuses the host page-walk
#: machinery for misses, per the paper's exception-handling discussion).
LLC_SIDE_TLB = TlbConfig(entries=128, page_bytes=64 * 1024, in_flight=2,
                         miss_latency_cycles=35)


class LlcSideMemory:
    """Memory path for an LLC-side Widx: buffer -> LLC (no crossbar) -> DRAM.

    Implements the same interface as :class:`MemoryHierarchy`, so the Widx
    machine runs unmodified on either placement.
    """

    def __init__(self, cfg: SystemConfig) -> None:
        self.cfg = cfg
        self.tlb = Tlb(LLC_SIDE_TLB)
        self.l1d = CacheLevel(LLC_SIDE_BUFFER, "widx-buffer")
        self.llc = CacheLevel(cfg.llc, "LLC")
        self.dram = MemoryControllers(cfg.dram, cfg.freq_ghz,
                                      cfg.llc.block_bytes)
        self.stats = MemoryStats()
        self.stats.l1d = self.l1d.stats
        self.stats.llc = self.llc.stats
        self.stats.tlb = self.tlb.stats

    # -- timed paths -----------------------------------------------------

    def load(self, addr: int, now: float) -> AccessResult:
        """A demand load on the LLC-side path."""
        self.stats.loads += 1
        return self._access(addr, now)

    def store(self, addr: int, now: float) -> AccessResult:
        """A store on the LLC-side path."""
        self.stats.stores += 1
        return self._access(addr, now)

    def touch(self, addr: int, now: float) -> AccessResult:
        """A non-binding prefetch on the LLC-side path."""
        self.l1d.stats.prefetches += 1
        return self._access(addr, now)

    def _access(self, addr: int, now: float) -> AccessResult:
        translated, tlb_stall = self.tlb.translate(addr, now)
        block = self.l1d.block_of(addr)
        port_time = self.l1d.port_grant(translated)
        outcome = self.l1d.probe(block, port_time)
        if outcome is None:
            return AccessResult(port_time + LLC_SIDE_BUFFER.latency_cycles,
                                tlb_stall, "L1")
        if outcome >= 0:
            return AccessResult(
                max(outcome, port_time + LLC_SIDE_BUFFER.latency_cycles),
                tlb_stall, "L1")
        miss_start = self.l1d.begin_miss(port_time)
        # Adjacent to the LLC: no crossbar traversal in either direction.
        llc_port = self.llc.port_grant(miss_start)
        llc_outcome = self.llc.probe(block, llc_port)
        if llc_outcome is None:
            data = llc_port + self.cfg.llc.latency_cycles
            level = "LLC"
        elif llc_outcome >= 0:
            data = max(llc_outcome, llc_port + self.cfg.llc.latency_cycles)
            level = "LLC"
        else:
            llc_miss_start = self.llc.begin_miss(llc_port)
            data = self.dram.fetch(block, llc_miss_start)
            self.llc.finish_miss(block, data)
            self.stats.dram_blocks += 1
            level = "DRAM"
        self.l1d.finish_miss(block, data)
        return AccessResult(data, tlb_stall, level)

    # -- functional warm-up ------------------------------------------------

    def warm_block(self, addr: int, level: str = "llc") -> None:
        """Install one block (and translation) with no timing effect."""
        block = self.l1d.block_of(addr)
        self.tlb.warm(addr)
        if level in ("l1", "l1d"):
            self.l1d.warm(block)
            self.llc.warm(block)
        elif level == "llc":
            self.llc.warm(block)
        else:
            raise ValueError(f"unknown warm level {level!r}")

    def warm_range(self, base: int, size: int, level: str = "llc") -> None:
        """Warm every block of a byte range."""
        block_bytes = self.cfg.l1d.block_bytes
        addr = base - (base % block_bytes)
        while addr < base + size:
            self.warm_block(addr, level)
            addr += block_bytes

    # -- observability -----------------------------------------------------

    def register_into(self, registry, prefix: str = "mem",
                      include_shared: bool = True) -> None:
        """Publish every component's counters under ``prefix`` (same
        protocol as :meth:`MemoryHierarchy.register_into`; there is no
        crossbar on this path)."""
        self.stats.register_into(registry, prefix)
        self.tlb.register_into(registry, f"{prefix}.tlb")
        self.l1d.register_into(registry, f"{prefix}.l1d")
        if include_shared:
            self.llc.register_into(registry, f"{prefix}.llc")
            self.dram.register_into(registry, f"{prefix}.dram")
