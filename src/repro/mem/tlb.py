"""TLB model with the paper's in-flight translation limit.

The paper's Table 2 lists "TLB: 2 in-flight translations" — the host MMU
(shared with Widx) can service at most two page walks concurrently.  Widx
has no TLB of its own; all units fault into the host MMU, so this module is
shared by the baseline cores and the accelerator.

A page walk is modelled as a fixed latency (``miss_latency_cycles``); the
paper reports TLB miss ratios of at most ~3% (Large hash-join index) and
TLB stall shares of at most 8% of walker cycles, which this model
reproduces without simulating the radix walk itself.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..config import TlbConfig
from ..sim.resources import OccupancyPool
from .stats import TlbStats


class Tlb:
    """LRU TLB with a bounded number of concurrent page walks.

    Entry recency uses the same monotone-tick scheme as
    :class:`repro.mem.cache.CacheArray`: hits are one dict store, and a
    full-table insert evicts the minimum-tick (least-recently-used) page —
    identical victims to the ordered-dict implementation it replaced.
    """

    __slots__ = ("cfg", "_page_bits", "_entries", "_walks", "stats",
                 "_inflight", "_tick")

    def __init__(self, cfg: TlbConfig) -> None:
        self.cfg = cfg
        self._page_bits = cfg.page_bytes.bit_length() - 1
        self._entries: Dict[int, int] = {}
        self._tick = 0
        self._walks = OccupancyPool(capacity=cfg.in_flight)
        self.stats = TlbStats()
        # In-flight walks by page -> completion, so concurrent misses to one
        # page share a single walk.
        self._inflight: dict = {}

    @property
    def walks(self) -> OccupancyPool:
        """The bounded page-walk pool (exposed for leak checks/diagnostics)."""
        return self._walks

    def page_of(self, addr: int) -> int:
        """The page number an address falls in."""
        return addr >> self._page_bits

    def translate(self, addr: int, now: float) -> Tuple[float, float]:
        """Translate ``addr`` at time ``now``.

        Returns ``(ready_time, stall_cycles)`` where ``ready_time`` is when
        the physical address is available and ``stall_cycles`` is the
        translation stall attributed to this access (0 on a hit).
        """
        page = addr >> self._page_bits
        stats = self.stats
        stats.accesses.value += 1
        entries = self._entries
        pending = self._inflight.get(page)
        if pending is not None:
            if pending > now:
                # Share the in-flight walk instead of starting another.
                stall = pending - now
                stats.stall_cycles.value += stall
                return pending, stall
            del self._inflight[page]
        if page in entries:
            self._tick = tick = self._tick + 1
            entries[page] = tick
            return now, 0.0
        stats.misses.value += 1
        start = self._walks.acquire(now)
        done = start + self.cfg.miss_latency_cycles
        self._walks.release_at(done)
        self._inflight[page] = done
        self._insert(page)
        stall = done - now
        stats.stall_cycles.value += stall
        return done, stall

    def _insert(self, page: int) -> None:
        entries = self._entries
        self._tick = tick = self._tick + 1
        if page in entries:
            entries[page] = tick
            return
        if len(entries) >= self.cfg.entries:
            del entries[min(entries, key=entries.get)]
        entries[page] = tick

    def warm(self, addr: int) -> None:
        """Install the page translation with no timing effect."""
        self._insert(self.page_of(addr))

    def register_into(self, registry, prefix: str) -> None:
        """Publish TLB counters and page-walk occupancy under ``prefix``."""
        self.stats.register_into(registry, prefix)
        self._walks.register_into(registry, f"{prefix}.walks")
