"""Reference LRU structures for differential testing.

:class:`ReferenceCacheArray` is the *deliberately naive* LRU tag array
the optimized flat-dict tick scheme in
:class:`~repro.mem.cache.CacheArray` is differentially tested against:
each set is literally a Python list in recency order (index 0 = least
recently used), a hit removes the block and re-appends it at the
most-recent end, and the eviction victim is ``recency.pop(0)`` — LRU by
construction, impossible to get wrong.  The differential tests in
``tests/mem/test_differential_cache.py`` drive both arrays with
identical access streams and assert every hit/miss outcome and every
victim matches; the benchmarks in :mod:`repro.bench` use it (through
:class:`ReferenceCacheLevel`, which restores the original per-access
``Counter.__iadd__`` stats accounting) as the probe-storm speedup
baseline.

:func:`use_reference_arrays` swaps the reference structures into a built
:class:`~repro.mem.hierarchy.MemoryHierarchy`, giving a full-stack
reference memory system for end-to-end equivalence runs.

Do not "improve" this module: its value is being obviously correct,
not fast.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import CacheConfig
from ..sim.resources import OccupancyPool, PipelinedResource
from .hierarchy import MemoryHierarchy
from .stats import LevelStats


class ReferenceCacheArray:
    """Recency-list set-associative tag array with true LRU replacement.

    Drop-in replacement for :class:`~repro.mem.cache.CacheArray` (same
    public surface), used by assigning it to ``CacheLevel.array``.
    """

    __slots__ = ("block_bits", "num_sets", "associativity", "_sets")

    def __init__(self, cfg: CacheConfig) -> None:
        self.block_bits = cfg.block_bytes.bit_length() - 1
        self.num_sets = cfg.num_sets
        self.associativity = cfg.associativity
        #: set index -> resident blocks in recency order (front = LRU).
        self._sets: Dict[int, List[int]] = {}

    def block_of(self, addr: int) -> int:
        """The block number an address falls in."""
        return addr >> self.block_bits

    def _set_for(self, block: int) -> List[int]:
        index = block % self.num_sets
        recency = self._sets.get(index)
        if recency is None:
            recency = self._sets[index] = []
        return recency

    def lookup(self, block: int) -> bool:
        """True if resident; refreshes LRU position on hit."""
        recency = self._set_for(block)
        if block in recency:
            recency.remove(block)
            recency.append(block)
            return True
        return False

    def present(self, block: int) -> bool:
        """Residency check without touching LRU state."""
        return block in self._set_for(block)

    def insert(self, block: int) -> Optional[int]:
        """Insert a block; returns the evicted block (if any)."""
        recency = self._set_for(block)
        if block in recency:
            recency.remove(block)
            recency.append(block)
            return None
        victim = None
        if len(recency) >= self.associativity:
            victim = recency.pop(0)
        recency.append(block)
        return victim

    def invalidate(self, block: int) -> None:
        """Drop a block if resident."""
        recency = self._set_for(block)
        if block in recency:
            recency.remove(block)

    def resident_blocks(self) -> int:
        """Total blocks currently resident."""
        return sum(len(recency) for recency in self._sets.values())


class ReferenceCacheLevel:
    """Naive cache level: reference tag array + straightforward accounting.

    Same public surface as :class:`~repro.mem.cache.CacheLevel`, with the
    pre-overhaul hot path: every stats update is a ``Counter.__iadd__``
    method call and the tag array is the recency-list model above.  The
    timing resources (ports, MSHRs, miss combining) are the shared
    implementations — only the per-probe bookkeeping differs.
    """

    def __init__(self, cfg: CacheConfig, name: str) -> None:
        self.cfg = cfg
        self.name = name
        self.array = ReferenceCacheArray(cfg)
        self.ports = PipelinedResource(servers=cfg.ports, service=1.0)
        self.mshrs = OccupancyPool(capacity=cfg.mshrs)
        self.stats = LevelStats()
        self._inflight: Dict[int, float] = {}

    def block_of(self, addr: int) -> int:
        """The block number an address falls in."""
        return self.array.block_of(addr)

    def port_grant(self, now: float) -> float:
        """Time this access wins a port (>= now)."""
        return self.ports.request(now)

    def probe(self, block: int, now: float) -> Optional[float]:
        """Tag lookup at time ``now`` (same contract as CacheLevel.probe)."""
        self.stats.accesses += 1
        pending = self._inflight.get(block)
        if pending is not None:
            if pending > now:
                self.stats.combined_misses += 1
                return pending
            del self._inflight[block]
        if self.array.lookup(block):
            self.stats.hits += 1
            return None
        self.stats.misses += 1
        return -1.0

    def begin_miss(self, now: float) -> float:
        """Claim an MSHR; returns when the miss can actually issue (>= now)."""
        return self.mshrs.acquire(now)

    def finish_miss(self, block: int, fill_time: float) -> None:
        """Record the fill: releases the MSHR and installs the block."""
        self.mshrs.release_at(fill_time)
        self._inflight[block] = fill_time
        self.array.insert(block)

    def warm(self, block: int) -> None:
        """Functionally install a block with no timing effect (warm-up)."""
        self.array.insert(block)

    def register_into(self, registry, prefix: str) -> None:
        """Publish hit/miss counters, port and MSHR stats under ``prefix``."""
        self.stats.register_into(registry, prefix)
        self.ports.register_into(registry, f"{prefix}.ports")
        self.mshrs.register_into(registry, f"{prefix}.mshrs")


def use_reference_arrays(hierarchy: MemoryHierarchy) -> MemoryHierarchy:
    """Swap every cache level for the naive reference implementation.

    Must run before any accesses or warm-up touch the hierarchy (the
    arrays start empty).  Returns the hierarchy for chaining.
    """
    hierarchy.l1d = ReferenceCacheLevel(hierarchy.l1d.cfg, hierarchy.l1d.name)
    hierarchy.llc = ReferenceCacheLevel(hierarchy.llc.cfg, hierarchy.llc.name)
    # The hierarchy's stats views alias its levels' stats; re-alias them to
    # the fresh reference levels.
    hierarchy.stats.l1d = hierarchy.l1d.stats
    hierarchy.stats.llc = hierarchy.llc.stats
    return hierarchy
