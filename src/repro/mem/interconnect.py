"""On-chip interconnect: a fixed-latency crossbar (Table 2: 4 cycles).

The crossbar sits between the private L1s and the shared LLC.  The paper
models it as a fixed 4-cycle latency; contention on the crossbar itself is
not a bottleneck in the paper's analysis (L1 ports, MSHRs and off-chip
bandwidth are), so we model latency only.
"""

from __future__ import annotations

from ..obs import Counter


class Crossbar:
    """Fixed-latency link; counts traversals for reporting."""

    __slots__ = ("latency_cycles", "traversals")

    def __init__(self, latency_cycles: int) -> None:
        if latency_cycles < 0:
            raise ValueError("crossbar latency cannot be negative")
        self.latency_cycles = latency_cycles
        self.traversals = Counter()

    def traverse(self, now: float) -> float:
        """Returns arrival time of a message injected at ``now``."""
        self.traversals.value += 1
        return now + self.latency_cycles

    def register_into(self, registry, prefix: str) -> None:
        """Publish the traversal counter under ``prefix``."""
        registry.register(f"{prefix}.traversals", self.traversals)
