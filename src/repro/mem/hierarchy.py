"""The full memory hierarchy: TLB → L1-D → crossbar → LLC → DRAM.

This is the timing heart of the reproduction.  Every load/store issued by a
baseline core model or a Widx unit flows through :meth:`MemoryHierarchy.load`
or :meth:`MemoryHierarchy.store`, which:

1. translates through the shared TLB (bounded in-flight page walks),
2. wins an L1-D port (2 ports, 1 access/port/cycle),
3. on an L1 miss, claims an MSHR (10; same-block misses combine),
4. traverses the crossbar to the LLC (6-cycle hit),
5. on an LLC miss, fetches the block from a bandwidth-limited memory
   controller (45 ns + transfer slot),

returning an :class:`AccessResult` with the completion time and a
TLB-vs-memory stall attribution used by the Figure 8/9 cycle breakdowns.

Simplifications (documented per DESIGN.md): write-backs of dirty victims do
not consume modelled bandwidth, and the L1-I side is not modelled (Widx
units fetch from a tiny instruction buffer; the baseline indexing loops fit
in the L1-I).  Neither affects who wins or where crossovers fall: both add
small constant factors to all designs equally.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from .cache import CacheLevel
from .dram import MemoryControllers
from .interconnect import Crossbar
from .stats import MemoryStats
from .tlb import Tlb


@dataclass(frozen=True)
class AccessResult:
    """Timing outcome of one memory access."""

    complete: float        # absolute cycle the data is usable (load-to-use)
    tlb_stall: float       # cycles attributable to address translation
    level: str             # 'L1' | 'LLC' | 'DRAM' — where the data came from

    def latency(self, issued: float) -> float:
        """Cycles from issue to data-usable."""
        return self.complete - issued


class MemoryHierarchy:
    """Timing model of one core's view of the memory system.

    ``shared_llc`` / ``shared_dram`` let several cores' hierarchies share
    one LLC and one memory-controller bank — the Table 2 CMP, where four
    cores contend for the 4 MB LLC and two DDR3 channels (see
    :mod:`repro.cmp`).  TLB, L1-D and the crossbar port stay private.
    """

    def __init__(self, cfg: SystemConfig,
                 shared_llc: CacheLevel = None,
                 shared_dram: MemoryControllers = None) -> None:
        self.cfg = cfg
        self.tlb = Tlb(cfg.tlb)
        self.l1d = CacheLevel(cfg.l1d, "L1-D")
        self.llc = (shared_llc if shared_llc is not None
                    else CacheLevel(cfg.llc, "LLC"))
        self.crossbar = Crossbar(cfg.interconnect_cycles)
        self.dram = (shared_dram if shared_dram is not None
                     else MemoryControllers(cfg.dram, cfg.freq_ghz,
                                            cfg.llc.block_bytes))
        self.stats = MemoryStats()
        # Share the per-level stats objects so both views stay consistent.
        self.stats.l1d = self.l1d.stats
        self.stats.llc = self.llc.stats
        self.stats.tlb = self.tlb.stats

    # ------------------------------------------------------------------
    # Timed access paths
    # ------------------------------------------------------------------

    def load(self, addr: int, now: float) -> AccessResult:
        """A demand load issued at time ``now``."""
        self.stats.loads.value += 1
        return self._access(addr, now)

    def store(self, addr: int, now: float) -> AccessResult:
        """A store issued at time ``now`` (write-allocate, write-back)."""
        self.stats.stores.value += 1
        return self._access(addr, now)

    def touch(self, addr: int, now: float) -> AccessResult:
        """A prefetch (Widx TOUCH): starts the fill; caller does not wait."""
        self.l1d.stats.prefetches.value += 1
        return self._access(addr, now)

    def _access(self, addr: int, now: float) -> AccessResult:
        translated, tlb_stall = self.tlb.translate(addr, now)
        l1d = self.l1d
        block = addr >> l1d.array.block_bits
        port_time = l1d.port_grant(translated)
        outcome = l1d.probe(block, port_time)
        if outcome is None:  # L1 hit
            return AccessResult(port_time + self.cfg.l1d.latency_cycles,
                                tlb_stall, "L1")
        if outcome >= 0:  # combined with an in-flight miss
            return AccessResult(max(outcome, port_time + self.cfg.l1d.latency_cycles),
                                tlb_stall, "L1")
        # Fresh L1 miss: MSHR, then LLC.
        llc = self.llc
        miss_start = l1d.begin_miss(port_time)
        llc_arrival = self.crossbar.traverse(miss_start)
        llc_block = block  # block sizes match by config invariant
        llc_port = llc.port_grant(llc_arrival)
        llc_outcome = llc.probe(llc_block, llc_port)
        if llc_outcome is None:  # LLC hit
            data_at_llc = llc_port + self.cfg.llc.latency_cycles
            level = "LLC"
        elif llc_outcome >= 0:  # combined at the LLC
            data_at_llc = max(llc_outcome, llc_port + self.cfg.llc.latency_cycles)
            level = "LLC"
        else:  # LLC miss: off-chip
            llc_miss_start = llc.begin_miss(llc_port)
            data_at_llc = self.dram.fetch(llc_block, llc_miss_start)
            llc.finish_miss(llc_block, data_at_llc)
            self.stats.dram_blocks.value += 1
            level = "DRAM"
        fill_time = self.crossbar.traverse(data_at_llc)
        l1d.finish_miss(block, fill_time)
        return AccessResult(fill_time, tlb_stall, level)

    # ------------------------------------------------------------------
    # Functional warm-up (SimFlex-style warm checkpoints)
    # ------------------------------------------------------------------

    def warm_block(self, addr: int, level: str = "llc") -> None:
        """Install the block (and its translation) with no timing effect."""
        block = addr >> self.l1d.array.block_bits
        self.tlb.warm(addr)
        if level in ("l1", "l1d"):
            self.l1d.warm(block)
            self.llc.warm(block)
        elif level == "llc":
            self.llc.warm(block)
        else:
            raise ValueError(f"unknown warm level {level!r}")

    def warm_range(self, base: int, size: int, level: str = "llc") -> None:
        """Warm every block of ``[base, base+size)``."""
        block_bytes = self.cfg.l1d.block_bytes
        addr = base - (base % block_bytes)
        while addr < base + size:
            self.warm_block(addr, level)
            addr += block_bytes

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def register_into(self, registry, prefix: str = "mem",
                      include_shared: bool = True) -> None:
        """Publish every component's counters under ``prefix``.

        ``include_shared=False`` skips the LLC and DRAM — used by the CMP,
        where those are shared across cores and registered once at the
        chip level.
        """
        self.stats.register_into(registry, prefix)
        self.tlb.register_into(registry, f"{prefix}.tlb")
        self.l1d.register_into(registry, f"{prefix}.l1d")
        self.crossbar.register_into(registry, f"{prefix}.crossbar")
        if include_shared:
            self.llc.register_into(registry, f"{prefix}.llc")
            self.dram.register_into(registry, f"{prefix}.dram")
