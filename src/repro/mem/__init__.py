"""Simulated memory system.

Functional state lives in :class:`PhysicalMemory` (a flat byte-addressable
store with an allocator); timing lives in :class:`MemoryHierarchy`, which
models the paper's Table 2 hierarchy: a 32 KB 2-port L1-D with 10 MSHRs, a
4 MB LLC behind a 4-cycle crossbar, and two DDR3 memory controllers with
finite bandwidth, fronted by a TLB limited to 2 in-flight translations.
"""

from .physmem import PhysicalMemory, NULL_PTR
from .layout import AddressSpace, Region
from .cache import CacheArray, CacheLevel
from .tlb import Tlb
from .dram import MemoryControllers
from .hierarchy import AccessResult, MemoryHierarchy
from .stats import MemoryStats, LevelStats

__all__ = [
    "PhysicalMemory",
    "NULL_PTR",
    "AddressSpace",
    "Region",
    "CacheArray",
    "CacheLevel",
    "Tlb",
    "MemoryControllers",
    "AccessResult",
    "MemoryHierarchy",
    "MemoryStats",
    "LevelStats",
]
