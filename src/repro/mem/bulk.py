"""Bulk-mode building blocks: array views of the index and a load fast path.

Bulk mode (see :mod:`repro.sim.bulk`) evaluates many *independent* probes
as array programs instead of one discrete event at a time.  This module
holds the memory-side pieces:

* :func:`bulk_hash` — the :class:`~repro.db.hashfn.HashSpec` mixing
  pipeline applied to a whole key vector at once (``uint64`` wraparound is
  exactly the reference's ``& MASK64`` semantics);
* :class:`IndexArrays` — the live index's bucket headers and overflow
  nodes re-read out of simulated memory as numpy arrays, so chain walks
  become level-wise gathers instead of per-node ``PhysicalMemory.read``
  calls;
* :func:`build_probe_plans` — per-probe address streams (key load, node
  slot/next loads, payload emits, mispredicted exits) computed in bulk;
  a plan replays to the exact uop trace
  :class:`~repro.cpu.trace.ProbeTraceGenerator` would emit;
* :func:`make_fast_load` — a closure over one
  :class:`~repro.mem.MemoryHierarchy` that inlines the whole
  :meth:`~repro.mem.MemoryHierarchy._access` path (TLB walk, L1 ports and
  tags, MSHRs, crossbar, LLC, DRAM) against the live hierarchy objects,
  so hierarchy state and every published statistic stay bit-identical to
  the event-at-a-time path while skipping its per-access dispatch cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..db.column import Column
from ..db.hashfn import HashSpec
from .hierarchy import MemoryHierarchy

#: One probe's replay plan: the key-load address, one entry per chain node
#: ``(slot_load_addr, indirect_key_load_addr | None, payload_load_addr |
#: None, next_load_addr)``, the empty-header probe address (0 when the
#: chain is non-empty), whether the loop-exit branch mispredicts, and the
#: probe's uop/load counts excluding the hash-ALU chain (whose length the
#: replay knows); the counts let the replay bump its executed-uop totals
#: once per probe instead of once per uop.
ProbePlan = Tuple[int, Tuple[Tuple[int, Optional[int], Optional[int], int], ...],
                  int, bool, int, int]


def bulk_hash(spec: HashSpec, keys: np.ndarray) -> np.ndarray:
    """Apply a hash spec to a ``uint64`` key vector.

    ``uint64`` arithmetic wraps modulo 2**64, which is exactly the
    scalar reference's ``& MASK64``; every step kind is a pure
    shift/add/xor/mask, so the vectorized result is bit-identical to
    ``[spec(int(k)) for k in keys]``.
    """
    h = np.asarray(keys, dtype=np.uint64).copy()
    for step in spec.steps:
        kind = step.kind
        amount = np.uint64(step.amount)
        if kind == "xor_shl":
            h ^= h << amount
        elif kind == "xor_shr":
            h ^= h >> amount
        elif kind == "add_shl":
            h += h << amount
        elif kind == "sub_shl":
            h = (h << amount) - h
        elif kind == "and_const":
            h &= np.uint64(step.const)
        elif kind == "xor_const":
            h ^= np.uint64(step.const)
        elif kind == "add_const":
            h += np.uint64(step.const)
        elif kind == "shr":
            h >>= amount
        elif kind == "shl":
            h <<= amount
        else:  # new step kinds must be mirrored here before bulk use
            raise ValueError(f"bulk_hash cannot vectorize step {kind!r}")
    return h


class IndexArrays:
    """Array snapshot of a live :class:`~repro.db.hashtable.HashIndex`.

    Bucket headers and the used prefix of the overflow-node heap are
    re-read from simulated memory into strided slot/next arrays; a chain
    pointer then resolves with two integer ops and a gather instead of a
    ``PhysicalMemory`` byte-decode.
    """

    def __init__(self, index) -> None:
        layout = index.layout
        memory = index.memory
        # Snapshot the backing store: the plans must reflect the index as
        # built, and a bytes copy cannot be invalidated by later sbrk calls.
        raw = np.frombuffer(bytes(memory._store), dtype=np.uint8)
        base = memory._base
        stride = layout.stride
        slot_bytes = layout.key_slot_bytes
        slot_dtype = "<u4" if slot_bytes == 4 else "<u8"

        def extract(region_base: int, count: int):
            start = region_base - base
            slab = raw[start:start + count * stride].reshape(count, stride)
            off = layout.key_offset
            slots = (slab[:, off:off + slot_bytes].copy()
                     .view(slot_dtype).ravel().astype(np.uint64))
            off = layout.next_offset
            nexts = (slab[:, off:off + 8].copy()
                     .view("<u8").ravel().astype(np.int64))
            return slots, nexts

        self.buckets_base = index.buckets.base
        self.nodes_base = index.nodes.base
        self.shift = layout.shift
        self.header_slot, self.header_next = extract(index.buckets.base,
                                                     index.num_buckets)
        used_nodes = (index._next_node - index.nodes.base) // stride
        self.num_nodes = used_nodes
        if used_nodes:
            self.node_slot, self.node_next = extract(index.nodes.base,
                                                     used_nodes)
        else:
            self.node_slot = np.zeros(0, dtype=np.uint64)
            self.node_next = np.zeros(0, dtype=np.int64)

    def gather(self, addrs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(slot, next) for each node address (header or heap node)."""
        in_heap = addrs >= self.nodes_base
        heap_i = np.clip((addrs - self.nodes_base) >> self.shift,
                         0, max(self.num_nodes - 1, 0))
        head_i = np.clip((addrs - self.buckets_base) >> self.shift,
                         0, len(self.header_slot) - 1)
        if self.num_nodes:
            slots = np.where(in_heap, self.node_slot[heap_i],
                             self.header_slot[head_i])
            nexts = np.where(in_heap, self.node_next[heap_i],
                             self.header_next[head_i])
        else:
            slots = self.header_slot[head_i]
            nexts = self.header_next[head_i]
        return slots, nexts


def build_probe_plans(index, probe_keys: Column,
                      rows: Sequence[int],
                      model_mispredicts: bool = True) -> List[ProbePlan]:
    """Per-probe replay plans, computed with batched hashing and level-wise
    chain walks.

    The result replays to the exact address/dependency stream
    :meth:`~repro.cpu.trace.ProbeTraceGenerator.probe_uops` emits for the
    same rows (proven by the differential tests in ``tests/sim``).
    """
    layout = index.layout
    arrays = IndexArrays(index)
    rows_arr = np.asarray(list(rows), dtype=np.int64)
    keys = probe_keys.values[rows_arr].astype(np.uint64)

    num_buckets = index.num_buckets
    bucket_idx = (bulk_hash(index.hash_spec, keys)
                  & np.uint64(num_buckets - 1)).astype(np.int64)
    header_addr = index.buckets.base + (bucket_idx << arrays.shift)
    key_addr = probe_keys.region.base + rows_arr * probe_keys.dtype.nbytes
    empty = arrays.header_slot[bucket_idx] == np.uint64(layout.empty_sentinel)

    # Level-wise chain walk: every active probe advances one node per
    # iteration, so the loop depth is the maximum chain length, not the
    # probe count.
    chains: List[list] = [[] for _ in range(len(rows_arr))]
    active = np.nonzero(~empty)[0]
    cursor = header_addr[active]
    while active.size:
        slots, nexts = arrays.gather(cursor)
        for probe, addr, slot in zip(active.tolist(), cursor.tolist(),
                                     slots.tolist()):
            chains[probe].append((addr, slot))
        alive = nexts != 0
        active = active[alive]
        cursor = nexts[alive]

    typical = max(1, round(index.num_keys / max(1, num_buckets)))
    indirect = layout.indirect
    key_off = layout.key_offset
    next_off = layout.next_offset
    payload_off = layout.payload_offset
    if indirect:
        column_base = index.key_column.region.base
        column_width = index.key_column.dtype.nbytes

    plans: List[ProbePlan] = []
    key_addr_list = key_addr.tolist()
    header_list = header_addr.tolist()
    keys_list = keys.tolist()
    for i, chain in enumerate(chains):
        key = keys_list[i]
        if chain:
            nodes = []
            n_uops = 3   # key load + trailer ALU + trailer branch
            n_loads = 1  # key load
            for addr, slot in chain:
                if indirect:
                    ind_addr: Optional[int] = column_base + slot * column_width
                    payload: Optional[int] = None
                    n_uops += 7   # slot, ALU, indirect, cmp, br, next, br
                    n_loads += 3
                else:
                    ind_addr = None
                    if slot == key:
                        payload = addr + payload_off
                        n_uops += 6   # slot, cmp, br, payload, next, br
                        n_loads += 3
                    else:
                        payload = None
                        n_uops += 5   # slot, cmp, br, next, br
                        n_loads += 2
                nodes.append((addr + key_off, ind_addr, payload,
                              addr + next_off))
            mispredict = model_mispredicts and len(chain) != typical
            plans.append((key_addr_list[i], tuple(nodes), 0, mispredict,
                          n_uops, n_loads))
        else:
            mispredict = model_mispredicts and 0 != typical
            # key load + header load + ALU + branch + trailer ALU + branch
            plans.append((key_addr_list[i], (),
                          header_list[i] + key_off, mispredict, 6, 2))
    return plans




def make_fast_load(memory: MemoryHierarchy):
    """Build a specialized ``load`` for one hierarchy.

    Returns ``(fast_load, flush)``.  ``fast_load(addr, now)`` gives
    ``(complete, tlb_stall, is_l1)``; ``flush()`` must be called once
    after the replay, before reading any hierarchy statistics.

    The closure inlines :meth:`MemoryHierarchy._access` end to end — TLB
    translate (hit, shared walk, and miss branches), L1 port grant and tag
    probe, MSHR acquire/release, crossbar hops, the LLC and the DRAM
    dispatch — performing exactly the reference's state updates on the
    live hierarchy objects, so tag arrays, in-flight maps, pools and every
    statistic evolve bit-identically to the event-at-a-time path.  Two
    deferrals keep the hot path tight, both exactness-preserving:

    * counters that only ever take ``+1`` steps (loads, hits, grants,
      traversals, …) accumulate in local ints and land in one batched add
      at ``flush()`` — integer-valued float sums are associative below
      2**53, so the batched total is bit-equal to the reference's
      one-by-one accumulation (order-sensitive float sums such as stall
      and wait cycles stay live);
    * the port allocators' ``_max_now``/``_prune_cursor`` watermarks are
      mirrored in locals and written back at ``flush()``.

    If any pool has a tracer attached (the inline path cannot honor
    sampling hooks) it degrades to a thin wrapper over ``_access``.
    """
    from heapq import heappop, heappush

    tlb = memory.tlb
    l1 = memory.l1d
    llc = memory.llc
    if (tlb._walks.tracer is not None or l1.mshrs.tracer is not None
            or llc.mshrs.tracer is not None):
        access = memory._access
        loads_counter = memory.stats.loads

        def traced_load(addr: int, now: float):
            loads_counter.value += 1
            result = access(addr, now)
            return result.complete, result.tlb_stall, result.level == "L1"

        return traced_load, lambda: None

    page_bits = tlb._page_bits
    tlb_entries = tlb._entries
    tlb_inflight = tlb._inflight
    tlb_capacity = tlb.cfg.entries
    walk_latency = tlb.cfg.miss_latency_cycles
    tlb_stats = tlb.stats
    walks = tlb._walks
    walk_releases = walks._releases

    l1_array = l1.array
    block_bits = l1_array.block_bits
    l1_entries = l1_array._entries
    l1_inflight = l1._inflight
    l1_stats = l1.stats
    l1_latency = memory.cfg.l1d.latency_cycles
    l1_ports = l1.ports
    l1_port_counts = l1_ports._cycle_counts
    l1_port_servers = l1_ports.servers
    l1_port_horizon = l1_ports._horizon
    l1_mshrs = l1.mshrs
    l1_mshr_capacity = l1_mshrs.capacity
    l1_mshr_releases = l1_mshrs._releases
    l1_insert = l1_array.insert

    llc_array = llc.array
    llc_entries = llc_array._entries
    llc_inflight = llc._inflight
    llc_stats = llc.stats
    llc_latency = memory.cfg.llc.latency_cycles
    llc_ports = llc.ports
    llc_port_counts = llc_ports._cycle_counts
    llc_port_servers = llc_ports.servers
    llc_port_horizon = llc_ports._horizon
    llc_begin_miss = llc.begin_miss
    llc_finish_miss = llc.finish_miss

    crossbar = memory.crossbar
    crossbar_latency = crossbar.latency_cycles
    dram_fetch = memory.dram.fetch
    mem_stats = memory.stats

    # Mirrored port watermarks (written back by flush()).
    l1_max_now = l1_ports._max_now
    l1_prune = l1_ports._prune_cursor
    llc_max_now = llc_ports._max_now
    llc_prune = llc_ports._prune_cursor

    # Deferred unit-increment counters (see the docstring).
    n_loads = 0
    n_l1_hit = 0
    n_l1_comb = 0
    n_fresh = 0       # fresh L1 misses: one MSHR + LLC round trip each
    n_llc_hit = 0
    n_llc_comb = 0
    n_dram = 0
    mshr_levels = 0   # summed MSHR occupancy samples (ints: order-free)
    mshr_peak = 0

    def fast_load(addr: int, now: float):
        nonlocal n_loads, n_l1_hit, n_l1_comb, n_fresh, n_llc_hit
        nonlocal n_llc_comb, n_dram, mshr_levels, mshr_peak
        nonlocal l1_max_now, l1_prune, llc_max_now, llc_prune
        n_loads += 1
        page = addr >> page_bits
        block = addr >> block_bits

        # ---- Tlb.translate ------------------------------------------
        tlb_stall = 0.0
        translated = now
        pending = tlb_inflight.get(page)
        if pending is not None and pending > now:
            # Share the in-flight walk instead of starting another.
            tlb_stall = pending - now
            tlb_stats.stall_cycles.value += tlb_stall
            translated = pending
        else:
            if pending is not None:
                del tlb_inflight[page]
            if page in tlb_entries:
                tlb._tick = tick = tlb._tick + 1
                tlb_entries[page] = tick
            else:
                tlb_stats.misses.value += 1
                # OccupancyPool.acquire + release_at on the walk pool.
                while walk_releases and walk_releases[0] <= now:
                    heappop(walk_releases)
                if len(walk_releases) < walks.capacity:
                    start = now
                else:
                    start = heappop(walk_releases)
                    walks.wait_cycles.value += start - now
                walks.acquisitions.value += 1
                done = start + walk_latency
                walks.releases.value += 1
                heappush(walk_releases, done)
                usage = walks.usage
                level = len(walk_releases)
                usage.samples += 1
                usage.total += level
                if level > usage.peak:
                    usage.peak = level
                tlb_inflight[page] = done
                # Tlb._insert (the page cannot be resident here).
                tlb._tick = tick = tlb._tick + 1
                if len(tlb_entries) >= tlb_capacity:
                    del tlb_entries[min(tlb_entries, key=tlb_entries.get)]
                tlb_entries[page] = tick
                tlb_stall = done - now
                tlb_stats.stall_cycles.value += tlb_stall
                translated = done

        # ---- L1 port grant (PipelinedResource.request, service == 1) --
        if translated > l1_max_now:
            l1_max_now = translated
        cycle = int(translated)
        if cycle < translated:
            cycle += 1
        count = l1_port_counts.get(cycle, 0)
        while count >= l1_port_servers:
            cycle += 1
            count = l1_port_counts.get(cycle, 0)
        l1_port_counts[cycle] = count + 1
        cutoff = int(l1_max_now - l1_port_horizon)
        if l1_prune < cutoff - 50_000:
            for old in range(l1_prune, cutoff):
                l1_port_counts.pop(old, None)
            l1_prune = cutoff
        port_time = float(cycle)

        # ---- L1 probe ------------------------------------------------
        pending = l1_inflight.get(block)
        if pending is not None:
            if pending > port_time:
                n_l1_comb += 1
                hit_time = port_time + l1_latency
                return ((pending if pending > hit_time else hit_time),
                        tlb_stall, True)
            del l1_inflight[block]
        if block in l1_entries:
            l1_array._tick = tick = l1_array._tick + 1
            l1_entries[block] = tick
            n_l1_hit += 1
            return port_time + l1_latency, tlb_stall, True

        # ---- fresh L1 miss: MSHR (OccupancyPool.acquire) -------------
        n_fresh += 1
        while l1_mshr_releases and l1_mshr_releases[0] <= port_time:
            heappop(l1_mshr_releases)
        if len(l1_mshr_releases) < l1_mshr_capacity:
            miss_start = port_time
        else:
            miss_start = heappop(l1_mshr_releases)
            l1_mshrs.wait_cycles.value += miss_start - port_time

        # ---- crossbar to the LLC, LLC port + probe -------------------
        llc_arrival = miss_start + crossbar_latency
        if llc_arrival > llc_max_now:
            llc_max_now = llc_arrival
        cycle = int(llc_arrival)
        if cycle < llc_arrival:
            cycle += 1
        count = llc_port_counts.get(cycle, 0)
        while count >= llc_port_servers:
            cycle += 1
            count = llc_port_counts.get(cycle, 0)
        llc_port_counts[cycle] = count + 1
        cutoff = int(llc_max_now - llc_port_horizon)
        if llc_prune < cutoff - 50_000:
            for old in range(llc_prune, cutoff):
                llc_port_counts.pop(old, None)
            llc_prune = cutoff
        llc_port = float(cycle)

        pending = llc_inflight.get(block)
        if pending is not None and pending > llc_port:
            n_llc_comb += 1
            hit_time = llc_port + llc_latency
            data_at_llc = pending if pending > hit_time else hit_time
        else:
            if pending is not None:
                del llc_inflight[block]
            if block in llc_entries:
                llc_array._tick = tick = llc_array._tick + 1
                llc_entries[block] = tick
                n_llc_hit += 1
                data_at_llc = llc_port + llc_latency
            else:
                n_dram += 1
                data_at_llc = dram_fetch(block, llc_begin_miss(llc_port))
                llc_finish_miss(block, data_at_llc)

        # ---- fill back to the L1 (CacheLevel.finish_miss) ------------
        fill_time = data_at_llc + crossbar_latency
        heappush(l1_mshr_releases, fill_time)
        level = len(l1_mshr_releases)
        mshr_levels += level
        if level > mshr_peak:
            mshr_peak = level
        l1_inflight[block] = fill_time
        l1_insert(block)
        return fill_time, tlb_stall, False

    def flush() -> None:
        l1_ports._max_now = l1_max_now
        l1_ports._prune_cursor = l1_prune
        llc_ports._max_now = llc_max_now
        llc_ports._prune_cursor = llc_prune
        mem_stats.loads.value += n_loads
        tlb_stats.accesses.value += n_loads
        l1_ports.grants.value += n_loads
        l1_ports.busy_cycles.value += float(n_loads)
        l1_stats.accesses.value += n_loads
        l1_stats.hits.value += n_l1_hit
        l1_stats.combined_misses.value += n_l1_comb
        l1_stats.misses.value += n_fresh
        crossbar.traversals.value += 2 * n_fresh
        llc_ports.grants.value += n_fresh
        llc_ports.busy_cycles.value += float(n_fresh)
        llc_stats.accesses.value += n_fresh
        llc_stats.hits.value += n_llc_hit
        llc_stats.combined_misses.value += n_llc_comb
        llc_stats.misses.value += n_dram
        mem_stats.dram_blocks.value += n_dram
        l1_mshrs.acquisitions.value += n_fresh
        l1_mshrs.releases.value += n_fresh
        usage = l1_mshrs.usage
        usage.samples += n_fresh
        usage.total += mshr_levels
        if mshr_peak > usage.peak:
            usage.peak = mshr_peak

    return fast_load, flush
