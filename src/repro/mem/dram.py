"""Memory controllers with finite off-chip bandwidth.

The paper's off-chip constraint (Section 3.2, Equations 4-5) is what caps
walker scaling at high LLC miss ratios, so bandwidth is modelled as a real
resource: each controller transfers one 64 B block per ``service`` cycles
(peak bandwidth derated to ~70% effective, per the paper's 9 GB/s figure),
on top of the 45 ns access latency.  Blocks are interleaved across
controllers by block address.
"""

from __future__ import annotations

from typing import List

from ..config import DramConfig, PimConfig
from ..obs import Counter, Histogram
from ..sim.resources import PipelinedResource


class MemoryControllers:
    """Bank of memory controllers; returns data-ready times for block fetches."""

    def __init__(self, cfg: DramConfig, freq_ghz: float, block_bytes: int) -> None:
        self.cfg = cfg
        self.latency_cycles = cfg.latency_cycles(freq_ghz)
        self.service_cycles = cfg.block_service_cycles(freq_ghz, block_bytes)
        self._controllers: List[PipelinedResource] = [
            PipelinedResource(servers=1, service=self.service_cycles)
            for _ in range(cfg.num_controllers)
        ]
        self.blocks_transferred = Counter()
        # Issue-to-data-ready latency per block fetch (queueing + access).
        self.fetch_latency = Histogram()

    def controller_for(self, block: int) -> int:
        """Which controller owns a block (address interleave)."""
        return block % len(self._controllers)

    def fetch(self, block: int, now: float) -> float:
        """Request a block at time ``now``; returns its data-ready time.

        The transfer occupies the owning controller for ``service_cycles``
        (bandwidth) and the data arrives ``latency_cycles`` after the
        transfer starts (access latency).
        """
        controller = self._controllers[self.controller_for(block)]
        start = controller.request(now)
        self.blocks_transferred += 1
        self.fetch_latency.record(start - now + self.latency_cycles)
        return start + self.latency_cycles

    @property
    def busy_cycles(self) -> float:
        return sum(mc.busy_cycles for mc in self._controllers)

    def utilization(self, elapsed_cycles: float) -> float:
        """Mean controller utilization over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.busy_cycles / (elapsed_cycles * len(self._controllers))

    def register_into(self, registry, prefix: str) -> None:
        """Publish transfer counters, fetch latencies and per-controller
        bandwidth occupancy under ``prefix``."""
        registry.register(f"{prefix}.blocks_transferred",
                          self.blocks_transferred)
        registry.register(f"{prefix}.fetch_latency", self.fetch_latency)
        for index, controller in enumerate(self._controllers):
            controller.register_into(registry, f"{prefix}.mc{index}")


class DramBankPorts:
    """Bank-side access ports for near-memory (PIM) walkers.

    Where :class:`MemoryControllers` models the host's view of memory —
    the off-chip channel with its 45 ns round trip and per-controller
    bandwidth — this models what a walker sitting *inside* the device
    sees: the bank array itself.  An access occupies one of the bank's
    ``walkers_per_bank`` access slots for the full bank-local row latency,
    so two probes hitting one bank serialize once its slots are busy (the
    bank-conflict limit that bounds PIM scaling), while accesses to
    different banks proceed independently.  Blocks interleave across banks
    by block address.
    """

    def __init__(self, pim: PimConfig, freq_ghz: float) -> None:
        self.cfg = pim
        self.latency_cycles = pim.bank_latency_cycles(freq_ghz)
        self._banks: List[PipelinedResource] = [
            PipelinedResource(servers=pim.walkers_per_bank,
                              service=float(self.latency_cycles))
            for _ in range(pim.num_banks)
        ]
        self.accesses = Counter()
        # Issue-to-data-ready latency per access (bank queueing + row).
        self.access_latency = Histogram()

    def bank_of(self, block: int) -> int:
        """Which bank owns a block (address interleave)."""
        return block % len(self._banks)

    def access(self, block: int, now: float) -> float:
        """Access a block's bank at time ``now``; returns data-ready time.

        The access holds one of the bank's walker slots for
        ``latency_cycles`` (the row occupancy) and the data is ready when
        that occupancy ends — there is no separate channel transfer, the
        walker reads the row buffer in place.
        """
        bank = self._banks[self.bank_of(block)]
        start = bank.request(now)
        self.accesses += 1
        self.access_latency.record(start - now + self.latency_cycles)
        return start + self.latency_cycles

    @property
    def busy_cycles(self) -> float:
        return sum(bank.busy_cycles for bank in self._banks)

    def utilization(self, elapsed_cycles: float) -> float:
        """Mean bank-slot utilization over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        slots = len(self._banks) * self.cfg.walkers_per_bank
        return self.busy_cycles / (elapsed_cycles * slots)

    def register_into(self, registry, prefix: str) -> None:
        """Publish access counters, latencies and per-bank occupancy."""
        registry.register(f"{prefix}.accesses", self.accesses)
        registry.register(f"{prefix}.access_latency", self.access_latency)
        for index, bank in enumerate(self._banks):
            bank.register_into(registry, f"{prefix}.bank{index}")
