"""Set-associative cache model: functional tag array plus timing resources.

The tag array (:class:`CacheArray`) tracks which blocks are resident with
true LRU replacement.  :class:`CacheLevel` pairs it with the timing
resources the paper's bottleneck analysis identifies: a fixed number of
ports (one access per port per cycle) and, for the L1, a fixed number of
MSHRs (Section 3.2, Equation 3), with same-block miss combining.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from ..config import CacheConfig
from ..sim.resources import OccupancyPool, PipelinedResource
from .stats import LevelStats


class CacheArray:
    """Functional set-associative tag array with LRU replacement."""

    __slots__ = ("block_bits", "num_sets", "associativity", "_sets")

    def __init__(self, cfg: CacheConfig) -> None:
        self.block_bits = cfg.block_bytes.bit_length() - 1
        self.num_sets = cfg.num_sets
        self.associativity = cfg.associativity
        self._sets: Dict[int, OrderedDict] = {}

    def block_of(self, addr: int) -> int:
        """The block number an address falls in."""
        return addr >> self.block_bits

    def _set_for(self, block: int) -> OrderedDict:
        index = block % self.num_sets
        entries = self._sets.get(index)
        if entries is None:
            entries = self._sets[index] = OrderedDict()
        return entries

    def lookup(self, block: int) -> bool:
        """True if resident; refreshes LRU position on hit."""
        entries = self._set_for(block)
        if block in entries:
            entries.move_to_end(block)
            return True
        return False

    def present(self, block: int) -> bool:
        """Residency check without touching LRU state."""
        return block in self._set_for(block)

    def insert(self, block: int) -> Optional[int]:
        """Insert a block; returns the evicted block (if any)."""
        entries = self._set_for(block)
        if block in entries:
            entries.move_to_end(block)
            return None
        victim = None
        if len(entries) >= self.associativity:
            victim, _ = entries.popitem(last=False)
        entries[block] = None
        return victim

    def invalidate(self, block: int) -> None:
        """Drop a block if resident."""
        self._set_for(block).pop(block, None)

    def resident_blocks(self) -> int:
        """Total blocks currently resident."""
        return sum(len(entries) for entries in self._sets.values())


class CacheLevel:
    """One cache level: tag array + ports + (for L1) MSHRs.

    Timing queries return absolute cycle timestamps; callers must issue
    requests in non-decreasing time order (guaranteed by the event engine).
    """

    def __init__(self, cfg: CacheConfig, name: str) -> None:
        self.cfg = cfg
        self.name = name
        self.array = CacheArray(cfg)
        self.ports = PipelinedResource(servers=cfg.ports, service=1.0)
        self.mshrs = OccupancyPool(capacity=cfg.mshrs)
        self.stats = LevelStats()
        # In-flight misses by block -> fill completion time (miss combining).
        self._inflight: Dict[int, float] = {}

    def block_of(self, addr: int) -> int:
        """The block number an address falls in."""
        return self.array.block_of(addr)

    def port_grant(self, now: float) -> float:
        """Time this access wins a port (>= now)."""
        return self.ports.request(now)

    def probe(self, block: int, now: float) -> Optional[float]:
        """Tag lookup at time ``now``.

        Returns ``None`` for a hit. For an in-flight miss to the same block,
        returns the pending fill time (combined miss — no new MSHR).  For a
        fresh miss, returns ``-1.0`` and the caller must complete the miss
        with :meth:`begin_miss` / :meth:`finish_miss`.
        """
        self.stats.accesses += 1
        pending = self._inflight.get(block)
        if pending is not None:
            if pending > now:
                self.stats.combined_misses += 1
                return pending
            del self._inflight[block]
        if self.array.lookup(block):
            self.stats.hits += 1
            return None
        self.stats.misses += 1
        return -1.0

    def begin_miss(self, now: float) -> float:
        """Claim an MSHR; returns when the miss can actually issue (>= now)."""
        return self.mshrs.acquire(now)

    def finish_miss(self, block: int, fill_time: float) -> None:
        """Record the fill: releases the MSHR and installs the block."""
        self.mshrs.release_at(fill_time)
        self._inflight[block] = fill_time
        self.array.insert(block)

    def warm(self, block: int) -> None:
        """Functionally install a block with no timing effect (warm-up)."""
        self.array.insert(block)

    def register_into(self, registry, prefix: str) -> None:
        """Publish hit/miss counters, port and MSHR stats under ``prefix``."""
        self.stats.register_into(registry, prefix)
        self.ports.register_into(registry, f"{prefix}.ports")
        self.mshrs.register_into(registry, f"{prefix}.mshrs")
