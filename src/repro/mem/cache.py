"""Set-associative cache model: functional tag array plus timing resources.

The tag array (:class:`CacheArray`) tracks which blocks are resident with
true LRU replacement.  :class:`CacheLevel` pairs it with the timing
resources the paper's bottleneck analysis identifies: a fixed number of
ports (one access per port per cycle) and, for the L1, a fixed number of
MSHRs (Section 3.2, Equation 3), with same-block miss combining.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import CacheConfig
from ..sim.resources import OccupancyPool, PipelinedResource
from .stats import LevelStats


class CacheArray:
    """Functional set-associative tag array with LRU replacement.

    The residency + recency state lives in ONE flat dict mapping resident
    block number to a monotone tick: a lookup hit is a membership probe
    plus a dict store (``entries[block] = tick``) — no per-set container
    hop, no ordered-dict linked-list surgery.  Set membership (needed
    only to pick eviction victims) is maintained separately in
    ``_sets[index]`` and touched only on insert/evict/invalidate, which
    are orders of magnitude rarer than hits in every modelled workload.
    The victim on a full-set insert is the minimum-tick member — exactly
    the least-recently-used block, so victim selection is bit-identical
    to the naive recency-list scheme (see
    :class:`repro.mem.reference.ReferenceCacheArray`, the obviously
    correct model the differential tests compare against).
    """

    __slots__ = ("block_bits", "num_sets", "associativity", "_entries",
                 "_sets", "_set_mask", "_tick")

    def __init__(self, cfg: CacheConfig) -> None:
        self.block_bits = cfg.block_bytes.bit_length() - 1
        self.num_sets = cfg.num_sets
        self.associativity = cfg.associativity
        #: resident block -> last-touch tick (all sets flattened together).
        self._entries: Dict[int, int] = {}
        #: set index -> resident members (maintained on insert/evict only).
        self._sets: Dict[int, set] = {}
        # Power-of-two set counts (every shipped config) index with a
        # precomputed mask; anything else falls back to modulo.
        self._set_mask = (self.num_sets - 1
                          if self.num_sets & (self.num_sets - 1) == 0
                          else None)
        self._tick = 0

    def block_of(self, addr: int) -> int:
        """The block number an address falls in."""
        return addr >> self.block_bits

    def _members_for(self, block: int) -> set:
        mask = self._set_mask
        index = block & mask if mask is not None else block % self.num_sets
        members = self._sets.get(index)
        if members is None:
            members = self._sets[index] = set()
        return members

    def lookup(self, block: int) -> bool:
        """True if resident; refreshes LRU position on hit."""
        entries = self._entries
        if block in entries:
            self._tick = tick = self._tick + 1
            entries[block] = tick
            return True
        return False

    def present(self, block: int) -> bool:
        """Residency check without touching LRU state."""
        return block in self._entries

    def insert(self, block: int) -> Optional[int]:
        """Insert a block; returns the evicted block (if any)."""
        entries = self._entries
        self._tick = tick = self._tick + 1
        if block in entries:
            entries[block] = tick
            return None
        mask = self._set_mask
        index = block & mask if mask is not None else block % self.num_sets
        members = self._sets.get(index)
        if members is None:
            members = self._sets[index] = set()
        victim = None
        if len(members) >= self.associativity:
            victim = min(members, key=entries.__getitem__)
            members.discard(victim)
            del entries[victim]
        members.add(block)
        entries[block] = tick
        return victim

    def invalidate(self, block: int) -> None:
        """Drop a block if resident."""
        if self._entries.pop(block, None) is not None:
            self._members_for(block).discard(block)

    def resident_blocks(self) -> int:
        """Total blocks currently resident."""
        return len(self._entries)


class CacheLevel:
    """One cache level: tag array + ports + (for L1) MSHRs.

    Timing queries return absolute cycle timestamps; callers must issue
    requests in non-decreasing time order (guaranteed by the event engine).
    """

    __slots__ = ("cfg", "name", "array", "ports", "mshrs", "stats",
                 "_inflight")

    def __init__(self, cfg: CacheConfig, name: str) -> None:
        self.cfg = cfg
        self.name = name
        self.array = CacheArray(cfg)
        self.ports = PipelinedResource(servers=cfg.ports, service=1.0)
        self.mshrs = OccupancyPool(capacity=cfg.mshrs)
        self.stats = LevelStats()
        # In-flight misses by block -> fill completion time (miss combining).
        self._inflight: Dict[int, float] = {}

    def block_of(self, addr: int) -> int:
        """The block number an address falls in."""
        return self.array.block_of(addr)

    def port_grant(self, now: float) -> float:
        """Time this access wins a port (>= now)."""
        return self.ports.request(now)

    def probe(self, block: int, now: float) -> Optional[float]:
        """Tag lookup at time ``now``.

        Returns ``None`` for a hit. For an in-flight miss to the same block,
        returns the pending fill time (combined miss — no new MSHR).  For a
        fresh miss, returns ``-1.0`` and the caller must complete the miss
        with :meth:`begin_miss` / :meth:`finish_miss`.
        """
        stats = self.stats
        stats.accesses.value += 1
        pending = self._inflight.get(block)
        if pending is not None:
            if pending > now:
                stats.combined_misses.value += 1
                return pending
            del self._inflight[block]
        # Inlined CacheArray.lookup hit path — the single hottest memory
        # operation in the simulator (every load probes here first).
        array = self.array
        entries = array._entries
        if block in entries:
            array._tick = tick = array._tick + 1
            entries[block] = tick
            stats.hits.value += 1
            return None
        stats.misses.value += 1
        return -1.0

    def begin_miss(self, now: float) -> float:
        """Claim an MSHR; returns when the miss can actually issue (>= now)."""
        return self.mshrs.acquire(now)

    def finish_miss(self, block: int, fill_time: float) -> None:
        """Record the fill: releases the MSHR and installs the block."""
        self.mshrs.release_at(fill_time)
        self._inflight[block] = fill_time
        self.array.insert(block)

    def warm(self, block: int) -> None:
        """Functionally install a block with no timing effect (warm-up)."""
        self.array.insert(block)

    def register_into(self, registry, prefix: str) -> None:
        """Publish hit/miss counters, port and MSHR stats under ``prefix``."""
        self.stats.register_into(registry, prefix)
        self.ports.register_into(registry, f"{prefix}.ports")
        self.mshrs.register_into(registry, f"{prefix}.mshrs")
