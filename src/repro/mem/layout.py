"""Named-region allocator over :class:`PhysicalMemory`.

Gives each simulated data structure (key table, bucket array, node heap,
output region) a named region, which makes address-to-structure attribution
possible in stats and error messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .physmem import PhysicalMemory


@dataclass(frozen=True)
class Region:
    """A contiguous named allocation."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """True if the address falls inside this region."""
        return self.base <= addr < self.end


class AddressSpace:
    """Allocates named regions and resolves addresses back to them."""

    def __init__(self, memory: Optional[PhysicalMemory] = None) -> None:
        self.memory = memory if memory is not None else PhysicalMemory()
        self._regions: Dict[str, Region] = {}
        self._ordered: List[Region] = []

    def allocate(self, name: str, size: int, align: int = 64) -> Region:
        """Allocate ``size`` bytes under a unique ``name``."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        base = self.memory.sbrk(size, align)
        region = Region(name, base, size)
        self._regions[name] = region
        self._ordered.append(region)
        return region

    def release(self, region: Region) -> None:
        """Free the most recent allocation, rewinding the break (LIFO only).

        Scratch regions — Widx output buffers — are released after use so
        the next allocation on this space lands at the same base address.
        That keeps each measurement hermetic: a workload's Nth offload sees
        exactly the address layout its first offload saw, which is what
        lets the campaign cache measure points in any order (or in
        parallel) and still produce bit-identical results.
        """
        if not self._ordered or self._ordered[-1] != region:
            raise ValueError(
                f"region {region.name!r} is not the most recent allocation")
        self._ordered.pop()
        del self._regions[region.name]
        self.memory.sbrk_rewind(region.base)

    def region(self, name: str) -> Region:
        """Look up a region by name."""
        return self._regions[name]

    def find(self, addr: int) -> Optional[Region]:
        """The region containing ``addr``, or None."""
        for region in self._ordered:
            if region.contains(addr):
                return region
        return None

    def regions(self) -> List[Region]:
        """All regions, in allocation order."""
        return list(self._ordered)

    @property
    def footprint_bytes(self) -> int:
        return sum(region.size for region in self._ordered)
