"""Flat byte-addressable simulated memory.

Every data structure the simulated programs touch (input key tables, hash
buckets, node lists, output regions) is laid out at real addresses inside a
single growable byte store.  Widx instructions and the baseline cores'
probe traces read and write these bytes, so the simulation is functionally
exact: the accelerated probe must produce byte-identical results to the
software loop.

Address 0 is reserved as the NULL pointer; the first mapped byte is at
``BASE_ADDRESS``.
"""

from __future__ import annotations

from ..errors import AlignmentError, SegmentationFault

NULL_PTR = 0
BASE_ADDRESS = 0x1_0000


class PhysicalMemory:
    """A growable, bounds-checked flat memory.

    All multi-byte accesses are little-endian and must be naturally aligned
    (the Widx datapath and the baseline cores issue only aligned accesses).
    """

    def __init__(self, limit_bytes: int = 1 << 31) -> None:
        self._store = bytearray()
        self._limit = limit_bytes
        self._base = BASE_ADDRESS
        self._brk = BASE_ADDRESS  # next unallocated address

    @property
    def allocated_bytes(self) -> int:
        """Total bytes handed out by :meth:`sbrk`."""
        return self._brk - self._base

    def sbrk(self, nbytes: int, align: int = 64) -> int:
        """Extend the mapped region by ``nbytes`` (aligned); return its base."""
        if nbytes < 0:
            raise ValueError("cannot allocate a negative size")
        if align < 1 or (align & (align - 1)) != 0:
            raise ValueError("alignment must be a positive power of two")
        base = (self._brk + align - 1) & ~(align - 1)
        end = base + nbytes
        if end - self._base > self._limit:
            raise SegmentationFault(
                f"allocation of {nbytes} bytes exceeds the {self._limit}-byte "
                f"simulated memory limit")
        needed = end - self._base
        if needed > len(self._store):
            self._store.extend(b"\x00" * (needed - len(self._store)))
        self._brk = end
        return base

    def sbrk_rewind(self, base: int) -> None:
        """Roll the break back to ``base``, undoing the latest allocations.

        The released range is zeroed so a subsequent :meth:`sbrk` hands out
        memory indistinguishable from a fresh extension — scratch buffers
        (Widx output regions) can be released and reallocated without the
        simulation observing reuse.
        """
        if not self._base <= base <= self._brk:
            raise ValueError(
                f"cannot rewind break to {base:#x}: outside "
                f"[{self._base:#x}, {self._brk:#x}]")
        start = base - self._base
        end = self._brk - self._base
        self._store[start:end] = b"\x00" * (end - start)
        self._brk = base

    def _offset(self, addr: int, size: int) -> int:
        if addr == NULL_PTR:
            raise SegmentationFault("NULL pointer dereference")
        if addr % size != 0:
            raise AlignmentError(f"unaligned {size}-byte access at {addr:#x}")
        offset = addr - self._base
        if offset < 0 or offset + size > self._brk - self._base:
            raise SegmentationFault(
                f"{size}-byte access at {addr:#x} outside mapped "
                f"[{self._base:#x}, {self._brk:#x})")
        return offset

    def read(self, addr: int, size: int) -> int:
        """Read an unsigned little-endian integer of ``size`` bytes."""
        offset = self._offset(addr, size)
        return int.from_bytes(self._store[offset:offset + size], "little")

    def write(self, addr: int, size: int, value: int) -> None:
        """Write an unsigned little-endian integer of ``size`` bytes."""
        offset = self._offset(addr, size)
        self._store[offset:offset + size] = (value & ((1 << (8 * size)) - 1)) \
            .to_bytes(size, "little")

    # Sized helpers keep call sites readable.
    def read_u8(self, addr: int) -> int:
        """Read one byte."""
        return self.read(addr, 1)

    def read_u32(self, addr: int) -> int:
        """Read an aligned 32-bit little-endian word."""
        return self.read(addr, 4)

    def read_u64(self, addr: int) -> int:
        """Read an aligned 64-bit little-endian word."""
        return self.read(addr, 8)

    def write_u8(self, addr: int, value: int) -> None:
        """Write one byte."""
        self.write(addr, 1, value)

    def write_u32(self, addr: int, value: int) -> None:
        """Write an aligned 32-bit little-endian word."""
        self.write(addr, 4, value)

    def write_u64(self, addr: int, value: int) -> None:
        """Write an aligned 64-bit little-endian word."""
        self.write(addr, 8, value)

    def read_bytes(self, addr: int, nbytes: int) -> bytes:
        """Raw byte read (no alignment requirement) for debugging/dumps."""
        if addr == NULL_PTR:
            raise SegmentationFault("NULL pointer dereference")
        offset = addr - self._base
        if offset < 0 or offset + nbytes > self._brk - self._base:
            raise SegmentationFault(f"byte read at {addr:#x} out of range")
        return bytes(self._store[offset:offset + nbytes])
