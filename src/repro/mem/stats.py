"""Counters collected by the memory hierarchy."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LevelStats:
    """Hit/miss accounting for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    combined_misses: int = 0  # misses merged into an in-flight MSHR
    prefetches: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses per lookup that actually consulted the tag array."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def check(self) -> None:
        """Internal-consistency invariant: every access hit, missed or combined."""
        assert self.hits + self.misses + self.combined_misses == self.accesses, (
            f"cache accounting broken: {self.hits}+{self.misses}"
            f"+{self.combined_misses} != {self.accesses}")


@dataclass
class TlbStats:
    accesses: int = 0
    misses: int = 0
    stall_cycles: float = 0.0

    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


@dataclass
class MemoryStats:
    """All counters for one :class:`~repro.mem.MemoryHierarchy` instance."""

    l1d: LevelStats = field(default_factory=LevelStats)
    llc: LevelStats = field(default_factory=LevelStats)
    tlb: TlbStats = field(default_factory=TlbStats)
    dram_blocks: int = 0
    loads: int = 0
    stores: int = 0

    def check(self) -> None:
        """Assert the hit/miss accounting identities hold."""
        self.l1d.check()
        self.llc.check()

    def summary(self) -> str:
        """One-line counter summary for logs and examples."""
        return (
            f"loads={self.loads} stores={self.stores} "
            f"L1 miss={self.l1d.miss_ratio:.3f} "
            f"LLC miss={self.llc.miss_ratio:.3f} "
            f"TLB miss={self.tlb.miss_ratio:.4f} "
            f"DRAM blocks={self.dram_blocks}")
