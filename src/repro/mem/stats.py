"""Counters collected by the memory hierarchy.

The stats structs are thin bundles of :class:`repro.obs.Counter` objects;
each exposes ``register_into(registry, prefix)`` so a
:class:`~repro.obs.StatsRegistry` can publish the live counters under
dotted paths like ``mem.l1d.misses``.
"""

from __future__ import annotations

from ..errors import InvariantViolation
from ..obs import Counter


class LevelStats:
    """Hit/miss accounting for one cache level."""

    __slots__ = ("accesses", "hits", "misses", "combined_misses", "prefetches")

    def __init__(self, accesses: int = 0, hits: int = 0, misses: int = 0,
                 combined_misses: int = 0, prefetches: int = 0) -> None:
        self.accesses = Counter(accesses)
        self.hits = Counter(hits)
        self.misses = Counter(misses)
        # Misses merged into an in-flight MSHR.
        self.combined_misses = Counter(combined_misses)
        self.prefetches = Counter(prefetches)

    @property
    def miss_ratio(self) -> float:
        """Fresh MSHR-allocating misses per tag-array lookup.

        Combined misses (merged into an in-flight MSHR) are counted in
        ``accesses`` but not in ``misses``, so this is the fill-traffic
        ratio; use :attr:`demand_miss_ratio` when every non-hit matters.
        """
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def demand_miss_ratio(self) -> float:
        """All non-hits (fresh + combined misses) per tag-array lookup."""
        if self.accesses == 0:
            return 0.0
        return (self.misses + self.combined_misses) / self.accesses

    def check(self) -> None:
        """Internal-consistency invariant: every access hit, missed or combined."""
        if self.hits + self.misses + self.combined_misses != self.accesses:
            raise InvariantViolation(
                f"cache accounting broken: {self.hits}+{self.misses}"
                f"+{self.combined_misses} != {self.accesses}")

    def register_into(self, registry, prefix: str) -> None:
        """Publish every counter under ``{prefix}.{name}``."""
        for name in self.__slots__:
            registry.register(f"{prefix}.{name}", getattr(self, name))

    def __repr__(self) -> str:
        return (f"LevelStats(accesses={self.accesses}, hits={self.hits}, "
                f"misses={self.misses}, "
                f"combined_misses={self.combined_misses}, "
                f"prefetches={self.prefetches})")


class TlbStats:
    """Hit/miss and stall accounting for one TLB."""

    __slots__ = ("accesses", "misses", "stall_cycles")

    def __init__(self, accesses: int = 0, misses: int = 0,
                 stall_cycles: float = 0.0) -> None:
        self.accesses = Counter(accesses)
        self.misses = Counter(misses)
        self.stall_cycles = Counter(stall_cycles)

    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def register_into(self, registry, prefix: str) -> None:
        """Publish every counter under ``{prefix}.{name}``."""
        for name in self.__slots__:
            registry.register(f"{prefix}.{name}", getattr(self, name))

    def __repr__(self) -> str:
        return (f"TlbStats(accesses={self.accesses}, misses={self.misses}, "
                f"stall_cycles={self.stall_cycles})")


class MemoryStats:
    """All counters for one :class:`~repro.mem.MemoryHierarchy` instance.

    The ``l1d``/``llc``/``tlb`` members are rebound by the hierarchy to the
    stats objects its component levels own, so this is a view, not a copy.
    """

    __slots__ = ("l1d", "llc", "tlb", "dram_blocks", "loads", "stores")

    def __init__(self) -> None:
        self.l1d = LevelStats()
        self.llc = LevelStats()
        self.tlb = TlbStats()
        self.dram_blocks = Counter()
        self.loads = Counter()
        self.stores = Counter()

    def check(self) -> None:
        """Verify the hit/miss accounting identities hold."""
        self.l1d.check()
        self.llc.check()

    def register_into(self, registry, prefix: str) -> None:
        """Publish only the hierarchy-level counters.

        The per-level stats are registered by the levels that own them
        (cache/TLB ``register_into``), keeping each counter's registration
        with its owner.
        """
        registry.register(f"{prefix}.dram_blocks", self.dram_blocks)
        registry.register(f"{prefix}.loads", self.loads)
        registry.register(f"{prefix}.stores", self.stores)

    def summary(self) -> str:
        """One-line counter summary for logs and examples."""
        return (
            f"loads={self.loads} stores={self.stores} "
            f"L1 miss={self.l1d.miss_ratio:.3f} "
            f"LLC miss={self.llc.miss_ratio:.3f} "
            f"TLB miss={self.tlb.miss_ratio:.4f} "
            f"DRAM blocks={self.dram_blocks}")
