"""The ordered-index kernel workloads (the ordered-index zoo).

Same data recipe as the hash-join kernel — dense-ish shuffled surrogate
keys, uniformly distributed probes with a controlled match fraction — but
bulk-loaded into the ordered structures the zoo compares:

==========  ==========================================================
class       structure probed
==========  ==========================================================
btree       :class:`~repro.db.BPlusTree`, per-probe root-to-leaf descent
trie        :class:`~repro.db.MlpTrie`, independent per-level fetches
wormhole    :class:`~repro.db.WormholeIndex`, MetaTrieHash + leaf chain
batched     the same B+-tree, probed level-wise in batches
==========  ==========================================================

``btree`` and ``batched`` probe the *same* tree — the traversal strategy,
not the layout, is the variable.  Sizes are scaled like the hash kernel's
(locality class preserved, key counts shrunk): Small stays LLC-friendly,
Medium is LLC-resident, Large spills to DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

from ..db.btree import BPlusTree
from ..db.column import Column
from ..db.datagen import make_rng, probe_keys, unique_keys
from ..db.trie import MlpTrie
from ..db.wormhole import WormholeIndex
from ..db.types import DataType
from ..errors import WorkloadError
from ..mem.layout import AddressSpace

OrderedIndex = Union[BPlusTree, MlpTrie, WormholeIndex]

#: The traversal classes the fig-indexes sweep compares.
ORDERED_CLASSES = ("btree", "trie", "wormhole", "batched")


@dataclass(frozen=True)
class OrderedSpec:
    """One ordered-kernel configuration."""

    name: str
    tuples: int
    key_bytes: int = 4

    def __post_init__(self) -> None:
        if self.tuples < 1:
            raise WorkloadError("ordered kernel needs at least one tuple")


ORDERED_SIZES: Dict[str, OrderedSpec] = {
    "Small": OrderedSpec("Small", tuples=4_096),
    "Medium": OrderedSpec("Medium", tuples=65_536),
    "Large": OrderedSpec("Large", tuples=262_144),
}


def build_ordered_workload(index_class: str, size: str, probe_count: int, *,
                           seed: int = 42,
                           space: AddressSpace = None,
                           match_fraction: float = 1.0,
                           ) -> Tuple[OrderedIndex, Column]:
    """Build an ordered index and its probe stream.

    Returns ``(index, probe_column)`` with the probe column materialized
    in the same simulated address space as the index.  The ``batched``
    class returns a plain :class:`BPlusTree` — batching happens at
    traversal time, so the structure is shared with ``btree`` and the
    comparison isolates the traversal strategy.
    """
    if index_class not in ORDERED_CLASSES:
        raise WorkloadError(
            f"unknown ordered index class {index_class!r}; choose from "
            f"{ORDERED_CLASSES}")
    try:
        spec = ORDERED_SIZES[size]
    except KeyError:
        raise WorkloadError(
            f"unknown ordered size {size!r}; choose from "
            f"{sorted(ORDERED_SIZES)}") from None
    if space is None:
        space = AddressSpace()
    rng = make_rng(seed)
    # Spread the dense surrogate keys across the 31-bit space (a fixed
    # stride keeps them unique).  Ordered structures index the key VALUE
    # distribution, not just its cardinality: dense keys would collapse
    # every high nibble to zero, starving the trie/wormhole prefix levels
    # and sending out-of-range probes on whole-chain walks — a pathology
    # of the data recipe, not of the structures under comparison.
    raw = unique_keys(spec.tuples, spec.key_bytes, rng).astype("int64")
    stride = ((1 << 31) - 1) // (4 * spec.tuples + 2)
    keys = (raw * stride).astype(
        DataType.for_key_bytes(spec.key_bytes).numpy_dtype)
    build_payloads = [int(k) % 1_000_003 + 1 for k in keys]
    name = f"ordered-{index_class}-{spec.name}"
    if index_class in ("btree", "batched"):
        index: OrderedIndex = BPlusTree(space, [int(k) for k in keys],
                                        build_payloads, name=name)
    elif index_class == "trie":
        index = MlpTrie(space, [int(k) for k in keys], build_payloads,
                        name=name)
    else:
        index = WormholeIndex(space, [int(k) for k in keys], build_payloads,
                              name=name)
    probes = probe_keys(keys, probe_count, match_fraction,
                        spec.key_bytes, rng)
    column = Column("probe_keys", DataType.for_key_bytes(spec.key_bytes),
                    probes)
    column.materialize(space)
    return index, column
