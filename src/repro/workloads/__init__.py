"""Workloads: the hash-join kernel and the DSS (TPC-H / TPC-DS) suites.

Dataset sizes are scaled per DESIGN.md: cache geometry stays at the
paper's Table 2 values, so each workload's *locality class* (L1-resident /
LLC-resident / DRAM-resident index) — the property that drives every
result — is preserved while key counts shrink to laptop scale.
"""

from .hashjoin_kernel import KernelSpec, KERNEL_SIZES, build_kernel_workload
from .ordered_kernel import (ORDERED_CLASSES, ORDERED_SIZES, OrderedSpec,
                             build_ordered_workload)
from .queryspec import QuerySpec, IndexClass, build_query_index
from .tpch import TPCH_QUERIES, TPCH_SIMULATED
from .tpcds import TPCDS_QUERIES, TPCDS_SIMULATED

__all__ = [
    "KernelSpec",
    "KERNEL_SIZES",
    "build_kernel_workload",
    "ORDERED_CLASSES",
    "ORDERED_SIZES",
    "OrderedSpec",
    "build_ordered_workload",
    "QuerySpec",
    "IndexClass",
    "build_query_index",
    "TPCH_QUERIES",
    "TPCH_SIMULATED",
    "TPCDS_QUERIES",
    "TPCDS_SIMULATED",
]
