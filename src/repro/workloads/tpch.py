"""The TPC-H query suite (scale factor 100 in the paper, scaled here).

Sixteen of the 22 TPC-H queries spend more than 5% of their time indexing
on MonetDB (Section 5); those are the Figure 2a bars.  The detailed
simulations (Figures 9a and 10) use the representative subset
{2, 11, 17, 19, 20, 22}:

* queries 2, 11 and 17 probe **relatively small** (LLC-resident) indexes
  and show no TLB misses;
* queries 19, 20 and 22 are **memory-intensive**, with TLB stalls of up to
  8% of walker cycles;
* query 20 joins on **double integers** (8-byte keys) whose
  computationally intensive hashing gives Widx its best speedup (5.5x);
* query 17 is the indexing-time maximum (94% of execution), so its
  query-level speedup (3.1x) approaches its indexing-only speedup.

Index cardinalities are scaled per DESIGN.md (locality class preserved);
Figure 2a fractions are calibrated to the paper's profiling: TPC-H spends
14-94% of execution indexing, 35% on average.
"""

from __future__ import annotations

from typing import Dict, List

from .queryspec import IndexClass, QuerySpec

_L1, _LLC, _DRAM = IndexClass.L1, IndexClass.LLC, IndexClass.DRAM


def _q(number: int, keys: int, index_class: IndexClass,
       fractions, *, key_bytes: int = 4, simulated: bool = False,
       nodes_per_bucket: float = 1.0) -> QuerySpec:
    return QuerySpec(
        benchmark="tpch", number=number, index_keys=keys,
        index_class=index_class, fractions=tuple(fractions),
        key_bytes=key_bytes, simulated=simulated,
        nodes_per_bucket=nodes_per_bucket)


#: All 16 TPC-H queries with >5% indexing time (Figure 2a's TPC-H bars).
TPCH_QUERIES: List[QuerySpec] = [
    _q(2, 16_384, _LLC, (0.55, 0.15, 0.20, 0.10), simulated=True,
       nodes_per_bucket=1.5),
    _q(3, 98_304, _LLC, (0.18, 0.35, 0.32, 0.15)),
    _q(5, 65_536, _LLC, (0.25, 0.30, 0.30, 0.15)),
    _q(7, 81_920, _LLC, (0.30, 0.25, 0.30, 0.15)),
    _q(8, 90_112, _LLC, (0.28, 0.27, 0.30, 0.15)),
    _q(9, 262_144, _DRAM, (0.45, 0.20, 0.25, 0.10)),
    _q(11, 24_576, _LLC, (0.60, 0.15, 0.15, 0.10), simulated=True,
       nodes_per_bucket=1.5),
    _q(13, 131_072, _LLC, (0.14, 0.36, 0.35, 0.15)),
    _q(14, 114_688, _LLC, (0.16, 0.42, 0.27, 0.15)),
    _q(15, 106_496, _LLC, (0.20, 0.40, 0.25, 0.15)),
    _q(17, 40_960, _LLC, (0.94, 0.02, 0.02, 0.02), simulated=True,
       nodes_per_bucket=1.5),
    _q(18, 147_456, _LLC, (0.25, 0.25, 0.35, 0.15)),
    _q(19, 524_288, _DRAM, (0.50, 0.25, 0.15, 0.10), simulated=True,
       nodes_per_bucket=1.5),
    _q(20, 393_216, _DRAM, (0.45, 0.25, 0.20, 0.10), key_bytes=8,
       simulated=True, nodes_per_bucket=1.5),
    _q(21, 163_840, _DRAM, (0.30, 0.25, 0.30, 0.15)),
    _q(22, 589_824, _DRAM, (0.40, 0.25, 0.20, 0.15), simulated=True,
       nodes_per_bucket=1.5),
]

#: The Figure 9a / Figure 10 detailed-simulation subset.
TPCH_SIMULATED: List[QuerySpec] = [q for q in TPCH_QUERIES if q.simulated]

TPCH_BY_NUMBER: Dict[int, QuerySpec] = {q.number: q for q in TPCH_QUERIES}
