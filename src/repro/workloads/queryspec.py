"""DSS query specifications.

We cannot run MonetDB on a 100 GB TPC dataset, so each evaluated query is
described by a :class:`QuerySpec` capturing exactly the characteristics the
paper shows drive its results:

* the hash index's cardinality and **locality class** (L1-resident /
  LLC-resident / DRAM-resident — Section 6.2 explains every per-query
  effect through this), scaled per DESIGN.md;
* key width and hash robustness (TPC-H q20's 8-byte "double integers"
  need computationally intensive hashing);
* MonetDB's indirect (row-id) node layout;
* the query's Figure 2a operator-time fractions, calibrated to the
  paper's profiling (VTune wall-clock shares, not simulation).

``build_query_index`` materializes the *real* scaled index + probe stream
for the detailed Figure 9/10 simulations; ``derive_volumes`` inverts the
operator cost models so the Figure 2a reconstruction is consistent with
the executor's costing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..db.column import Column
from ..db.cost import CostModel, DEFAULT_COST_MODEL
from ..db.datagen import make_rng, probe_keys, unique_keys
from ..db.hashfn import HashSpec, ROBUST_HASH_32, ROBUST_HASH_64
from ..db.hashtable import HashIndex, choose_num_buckets
from ..db.node import monetdb_layout
from ..db.types import DataType
from ..errors import WorkloadError
from ..mem.layout import AddressSpace


class IndexClass(enum.Enum):
    """Locality class of a query's hash index (the paper's explanatory
    variable for every per-query result)."""

    L1 = "l1"       # fits the 32 KB L1-D ("handful of unique entries")
    LLC = "llc"     # fits the 4 MB LLC ("relatively small index")
    DRAM = "dram"   # exceeds the LLC ("memory-intensive")

    @property
    def baseline_probe_cycles(self) -> float:
        """First-order OoO cycles/probe used by the Fig. 2a reconstruction."""
        return {"l1": 35.0, "llc": 70.0, "dram": 170.0}[self.value]


@dataclass(frozen=True)
class QuerySpec:
    """One evaluated DSS query."""

    benchmark: str          # 'tpch' | 'tpcds'
    number: int
    index_keys: int         # scaled build-side cardinality
    index_class: IndexClass
    fractions: Tuple[float, float, float, float]  # index, scan, sortjoin, other
    key_bytes: int = 4
    nodes_per_bucket: float = 1.0
    match_fraction: float = 0.9
    probe_rows: int = 200_000   # full-query probe volume (Fig. 2a scale)
    simulated: bool = False     # in the Figure 9/10 detailed subset

    def __post_init__(self) -> None:
        if self.benchmark not in ("tpch", "tpcds"):
            raise WorkloadError(f"unknown benchmark {self.benchmark!r}")
        if abs(sum(self.fractions) - 1.0) > 1e-6:
            raise WorkloadError(
                f"{self.label}: operator fractions must sum to 1, got "
                f"{self.fractions}")
        if self.key_bytes not in (4, 8):
            raise WorkloadError("keys must be 4 or 8 bytes")

    @property
    def label(self) -> str:
        return f"qry{self.number}"

    @property
    def index_fraction(self) -> float:
        return self.fractions[0]

    @property
    def hash_spec(self) -> HashSpec:
        return ROBUST_HASH_64 if self.key_bytes == 8 else ROBUST_HASH_32

    def describe(self) -> str:
        """One-line human-readable summary of the spec."""
        return (f"{self.benchmark.upper()} {self.label}: "
                f"{self.index_keys} keys, {self.index_class.value} index, "
                f"{self.key_bytes}B keys, index share "
                f"{self.index_fraction:.0%}")


def build_query_index(spec: QuerySpec, *,
                      space: Optional[AddressSpace] = None,
                      probe_count: int = 4_000,
                      seed: int = 7) -> Tuple[HashIndex, Column]:
    """Materialize the query's scaled index (MonetDB indirect layout) and a
    probe-key stream; returns ``(index, probe_column)``."""
    if space is None:
        space = AddressSpace()
    rng = make_rng(seed + spec.number)
    keys = unique_keys(spec.index_keys, spec.key_bytes, rng)
    base = Column(f"{spec.label}-keys", DataType.for_key_bytes(spec.key_bytes),
                  keys)
    base.materialize(space, f"{spec.label}:basecol")
    layout = monetdb_layout(spec.key_bytes)
    index = HashIndex(
        space, layout,
        choose_num_buckets(spec.index_keys, spec.nodes_per_bucket),
        spec.hash_spec, capacity=spec.index_keys,
        name=f"{spec.benchmark}-{spec.label}", key_column=base)
    for row in range(spec.index_keys):
        index.insert(int(keys[row]), row)
    probes = probe_keys(keys, probe_count, spec.match_fraction,
                        spec.key_bytes, rng)
    column = Column(f"{spec.label}-probes",
                    DataType.for_key_bytes(spec.key_bytes), probes)
    column.materialize(space)
    return index, column


@dataclass(frozen=True)
class QueryVolumes:
    """Operator volumes consistent with a spec's Figure 2a fractions."""

    probe_rows: int
    scan_rows: int
    build_rows: int
    sort_rows: int
    other_cycles: float
    total_cycles: float

    def breakdown(self, cost: CostModel = DEFAULT_COST_MODEL,
                  probe_cycles_per_tuple: float = 0.0) -> Dict[str, float]:
        """Forward-compute the category cycles from these volumes."""
        index = self.probe_rows * probe_cycles_per_tuple
        scan = cost.scan_cycles(self.scan_rows, 8)
        sortjoin = (cost.build_cycles(self.build_rows)
                    + cost.sort_cycles(self.sort_rows))
        return {"index": index, "scan": scan, "sortjoin": sortjoin,
                "other": self.other_cycles}


def derive_volumes(spec: QuerySpec,
                   cost: CostModel = DEFAULT_COST_MODEL) -> QueryVolumes:
    """Invert the operator cost models against the spec's fractions.

    The returned volumes, pushed back through the same cost models, yield
    the spec's Figure 2a breakdown (asserted by the calibration tests).
    """
    f_index, f_scan, f_sortjoin, f_other = spec.fractions
    probe_cost = spec.index_class.baseline_probe_cycles
    index_cycles = spec.probe_rows * probe_cost
    total = index_cycles / f_index

    # Scan: invert cost.scan_cycles(rows, 8B/row) — compute-bound regime.
    scan_target = total * f_scan
    per_row = 8.0 / cost.bytes_per_cycle
    compute = cost.predicate_cycles_per_row
    effective = max(per_row, compute) + min(per_row, compute) * 0.25
    scan_rows = max(0, round(scan_target / effective))

    # Sort & join: the index build accounts for part; sorting the rest.
    sortjoin_target = total * f_sortjoin
    build_rows = spec.index_keys
    build_cycles = cost.build_cycles(build_rows)
    sort_target = max(0.0, sortjoin_target - build_cycles)
    sort_rows = _invert_nlogn(sort_target, cost.sort_cycles_per_cmp)

    other_cycles = total * f_other
    return QueryVolumes(
        probe_rows=spec.probe_rows,
        scan_rows=scan_rows,
        build_rows=build_rows,
        sort_rows=sort_rows,
        other_cycles=other_cycles,
        total_cycles=total,
    )


def _invert_nlogn(target_cycles: float, cycles_per_cmp: float) -> int:
    """Largest n with n*log2(n)*c <= target (monotonic bisection)."""
    if target_cycles <= 0:
        return 0
    low, high = 1, 1
    while high * max(1, high.bit_length() - 1) * cycles_per_cmp < target_cycles:
        high *= 2
        if high > 1 << 40:
            break
    while low < high:
        mid = (low + high + 1) // 2
        if mid * max(1, mid.bit_length() - 1) * cycles_per_cmp <= target_cycles:
            low = mid
        else:
            high = mid - 1
    return low
