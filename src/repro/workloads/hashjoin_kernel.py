"""The optimized hash-join kernel workload (Section 5, [Balkesen et al.]).

The paper configures the "no partitioning" kernel with up to two nodes per
bucket, 4 B keys and 4 B payloads, and probes with 128M uniformly
distributed keys against three index sizes:

=========  ============  ===================  ==========================
Size       Paper tuples  Scaled tuples here   Locality class preserved
=========  ============  ===================  ==========================
Small      4K (32 KB)    4K                   fits the LLC, mostly L1/LLC
Medium     512K (4 MB)   128K (~3 MB index)   LLC-resident
Large      128M (1 GB)   1M (~23 MB index)    DRAM-resident, TLB pressure
=========  ============  ===================  ==========================

Small is unscaled; Medium/Large keep the index:LLC and index:TLB-reach
ratios that produce the paper's Figure 8 behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..db.column import Column
from ..db.datagen import make_rng, probe_keys, unique_keys
from ..db.hashfn import kernel_hash
from ..db.hashtable import HashIndex, choose_num_buckets
from ..db.node import KERNEL_LAYOUT
from ..db.types import DataType
from ..errors import WorkloadError
from ..mem.layout import AddressSpace


@dataclass(frozen=True)
class KernelSpec:
    """One kernel configuration (Small / Medium / Large)."""

    name: str
    tuples: int
    paper_tuples: int
    nodes_per_bucket: float = 2.0
    key_bytes: int = 4
    hash_mask_bits: int = 24

    def __post_init__(self) -> None:
        if self.tuples < 1:
            raise WorkloadError("kernel needs at least one tuple")


KERNEL_SIZES: Dict[str, KernelSpec] = {
    "Small": KernelSpec("Small", tuples=4_096, paper_tuples=4_096),
    "Medium": KernelSpec("Medium", tuples=131_072, paper_tuples=524_288),
    "Large": KernelSpec("Large", tuples=1_048_576, paper_tuples=134_217_728),
}


def build_kernel_workload(size: str, probe_count: int, *,
                          seed: int = 42,
                          space: AddressSpace = None,
                          match_fraction: float = 1.0,
                          ) -> Tuple[HashIndex, Column]:
    """Build the kernel index and its uniformly distributed probe stream.

    Returns ``(index, probe_column)`` with the probe column materialized in
    the same simulated address space as the index.
    """
    try:
        spec = KERNEL_SIZES[size]
    except KeyError:
        raise WorkloadError(
            f"unknown kernel size {size!r}; choose from {sorted(KERNEL_SIZES)}"
        ) from None
    if space is None:
        space = AddressSpace()
    rng = make_rng(seed)
    keys = unique_keys(spec.tuples, spec.key_bytes, rng)
    index = HashIndex(
        space, KERNEL_LAYOUT,
        choose_num_buckets(spec.tuples, spec.nodes_per_bucket),
        kernel_hash(spec.hash_mask_bits),
        capacity=spec.tuples,
        name=f"kernel-{spec.name}")
    for row, key in enumerate(keys):
        index.insert(int(key), row + 1)  # 4 B payload per tuple
    probes = probe_keys(keys, probe_count, match_fraction,
                        spec.key_bytes, rng)
    column = Column("probe_keys", DataType.for_key_bytes(spec.key_bytes),
                    probes)
    column.materialize(space)
    return index, column
