"""The TPC-DS query suite (scale factor 100 in the paper, scaled here).

The paper selects nine TPC-DS queries by class [Poess et al.]: Reporting
(37, 40, 81), Ad Hoc (43, 46, 52, 82) and both (5, 64).  TPC-DS has 429
columns against TPC-H's 61, so per-column indexes are far smaller for the
same dataset size — the distinguishing feature of Figure 9b:

* queries 5, 37, 64 and 82 probe indexes that fit in the **L1-D**; their
  walkers run at dispatcher speed and sit partially idle;
* query 37 is the paper's minimum: an L1-resident index (<1% L1-D miss
  ratio) giving a 1.5x indexing speedup, and only 29% of the query is
  offloaded, for a 10% query-level gain;
* TPC-DS spends up to 77% (45% on average) of execution indexing.

The detailed-simulation subset is {5, 37, 40, 52, 64, 82}.
"""

from __future__ import annotations

from typing import Dict, List

from .queryspec import IndexClass, QuerySpec

_L1, _LLC, _DRAM = IndexClass.L1, IndexClass.LLC, IndexClass.DRAM


def _q(number: int, keys: int, index_class: IndexClass,
       fractions, *, key_bytes: int = 4, simulated: bool = False,
       nodes_per_bucket: float = 1.0) -> QuerySpec:
    return QuerySpec(
        benchmark="tpcds", number=number, index_keys=keys,
        index_class=index_class, fractions=tuple(fractions),
        key_bytes=key_bytes, simulated=simulated,
        nodes_per_bucket=nodes_per_bucket)


#: The nine selected TPC-DS queries (Figure 2a's TPC-DS bars).
TPCDS_QUERIES: List[QuerySpec] = [
    _q(5, 512, _L1, (0.50, 0.20, 0.18, 0.12), simulated=True,
       nodes_per_bucket=2.0),
    _q(37, 128, _L1, (0.29, 0.30, 0.26, 0.15), simulated=True),
    _q(40, 49_152, _LLC, (0.55, 0.18, 0.17, 0.10), simulated=True,
       nodes_per_bucket=1.5),
    _q(43, 32_768, _LLC, (0.35, 0.28, 0.25, 0.12)),
    _q(46, 40_960, _LLC, (0.40, 0.25, 0.23, 0.12)),
    _q(52, 65_536, _LLC, (0.45, 0.22, 0.21, 0.12), simulated=True,
       nodes_per_bucket=1.5),
    _q(64, 512, _L1, (0.77, 0.09, 0.08, 0.06), simulated=True,
       nodes_per_bucket=2.0),
    _q(81, 24_576, _LLC, (0.30, 0.30, 0.25, 0.15)),
    _q(82, 384, _L1, (0.45, 0.25, 0.18, 0.12), simulated=True,
       nodes_per_bucket=2.0),
]

#: The Figure 9b / Figure 10 detailed-simulation subset.
TPCDS_SIMULATED: List[QuerySpec] = [q for q in TPCDS_QUERIES if q.simulated]

TPCDS_BY_NUMBER: Dict[int, QuerySpec] = {q.number: q for q in TPCDS_QUERIES}
