"""Widx reproduction: accelerating index traversals for in-memory databases.

A full-system reproduction of Kocberber et al., *Meet the Walkers* (MICRO
2013), in simulation:

* :mod:`repro.db` — a mini column-store engine with simulated-memory hash
  indexes (the MonetDB stand-in);
* :mod:`repro.mem` — the Table 2 memory hierarchy (L1-D ports + MSHRs,
  LLC, crossbar, bandwidth-limited memory controllers, TLB);
* :mod:`repro.cpu` — trace-driven OoO and in-order baseline cores;
* :mod:`repro.widx` — the Widx accelerator: programmable dispatcher /
  walker / producer units running real Table 1 ISA programs;
* :mod:`repro.model` — the Section 3.2 analytical bottleneck model;
* :mod:`repro.energy` — the Section 6.3 area/power/energy model;
* :mod:`repro.workloads` / :mod:`repro.harness` — the hash-join kernel and
  DSS suites, plus one driver per paper figure.

Quickstart::

    from repro import build_kernel_workload, offload_probe
    index, probes = build_kernel_workload("Small", probe_count=2000)
    outcome = offload_probe(index, probes)
    print(outcome.cycles_per_tuple, outcome.matches)
"""

from .config import (SystemConfig, WidxConfig, CacheConfig, TlbConfig,
                     DramConfig, CoreConfig, DEFAULT_CONFIG)
from .errors import ReproError
from .mem import AddressSpace, MemoryHierarchy, PhysicalMemory
from .db import (Table, Column, DataType, HashIndex, build_index,
                 QueryExecutor, HashSpec)
from .cpu import measure_indexing
from .widx import offload_probe, assemble
from .model import AnalyticalModel
from .energy import PowerModel, energy_report
from .workloads import build_kernel_workload, build_query_index

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "WidxConfig",
    "CacheConfig",
    "TlbConfig",
    "DramConfig",
    "CoreConfig",
    "DEFAULT_CONFIG",
    "ReproError",
    "AddressSpace",
    "MemoryHierarchy",
    "PhysicalMemory",
    "Table",
    "Column",
    "DataType",
    "HashIndex",
    "build_index",
    "QueryExecutor",
    "HashSpec",
    "measure_indexing",
    "offload_probe",
    "assemble",
    "AnalyticalModel",
    "PowerModel",
    "energy_report",
    "build_kernel_workload",
    "build_query_index",
    "__version__",
]
