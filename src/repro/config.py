"""System configuration: the paper's Table 2 parameters plus scaled presets.

The defaults reproduce Table 2 of the paper (MICRO 2013):

========================  =====================================================
Parameter                 Value
========================  =====================================================
Technology                40 nm, 2 GHz
CMP features              4 cores
Core types                In-order (Cortex-A8-like): 2-wide
                          OoO (Xeon-like): 4-wide, 128-entry ROB
L1-I/D caches             32 KB, split, 2 ports, 64 B blocks, 10 MSHRs,
                          2-cycle load-to-use latency
LLC                       4 MB, 6-cycle hit latency
TLB                       2 in-flight translations
Interconnect              Crossbar, 4-cycle latency
Main memory               32 GB, 2 MCs, BW: 12.8 GB/s, 45 ns access latency
========================  =====================================================

Workload *sizes* are scaled down (see :mod:`repro.workloads`) so runs finish
on a laptop; the cache/memory parameters above are kept at the paper's values
so the locality classes (L1-resident / LLC-resident / DRAM-resident) that
drive all results are preserved.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from .errors import ConfigError


def stable_json(value: object) -> str:
    """Canonical JSON: sorted keys, no whitespace, exact float round-trip.

    ``json`` serializes floats with ``repr``, which round-trips exactly, so
    two equal configurations always produce byte-identical text — the
    property the persistent measurement cache keys rely on.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def stable_digest(value: object) -> str:
    """Hex SHA-256 of a value's canonical JSON."""
    return hashlib.sha256(stable_json(value).encode("utf-8")).hexdigest()


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigError(message)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    block_bytes: int = 64
    associativity: int = 8
    latency_cycles: int = 2
    ports: int = 2
    mshrs: int = 10

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.block_bytes > 0 and (self.block_bytes & (self.block_bytes - 1)) == 0,
                 "block size must be a positive power of two")
        _require(self.size_bytes % self.block_bytes == 0,
                 "cache size must be a multiple of the block size")
        _require(self.associativity > 0, "associativity must be positive")
        _require(self.num_blocks % self.associativity == 0,
                 "cache blocks must divide evenly into sets")
        _require(self.latency_cycles >= 1, "cache latency must be >= 1 cycle")
        _require(self.ports >= 1, "cache needs at least one port")
        _require(self.mshrs >= 1, "cache needs at least one MSHR")

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity


@dataclass(frozen=True)
class TlbConfig:
    """TLB geometry and the paper's in-flight translation limit.

    The paper's server backs its 1 GB index with huge pages, so TLB reach
    is comparable to the index footprint and the measured TLB miss ratio is
    at most ~3% (Section 6.1).  Our workloads are scaled down ~50x, so the
    default TLB reach (256 entries x 64 KB = 16 MB) is scaled to preserve
    the paper's reach-to-footprint ratio against the scaled Large index
    (~18 MB); the Table 2 limit of two concurrent page walks is kept as-is.

    ``trap_cycles`` models software TLB-miss handling on the *baseline*
    cores (the simulated machine is SPARC, whose TSB walk is a software
    trap executed by the core itself).  The paper notes that with
    software-walked page tables "the walk will happen on the core and not
    on Widx" — Widx stalls only for the walk latency while the host MMU
    services it, which is one of its structural advantages on
    TLB-stressing indexes.
    """

    entries: int = 256
    page_bytes: int = 64 * 1024
    in_flight: int = 2
    miss_latency_cycles: int = 35
    trap_cycles: int = 50

    def __post_init__(self) -> None:
        _require(self.entries >= 1, "TLB needs at least one entry")
        _require(self.page_bytes > 0 and (self.page_bytes & (self.page_bytes - 1)) == 0,
                 "page size must be a power of two")
        _require(self.in_flight >= 1, "TLB must allow at least one in-flight translation")
        _require(self.miss_latency_cycles >= 1, "TLB miss latency must be >= 1")


@dataclass(frozen=True)
class DramConfig:
    """Main-memory controllers and off-chip bandwidth.

    ``bandwidth_gbps`` is per memory controller (12.8 GB/s for DDR3 in the
    paper); ``efficiency`` derates it to the ~70% effective bandwidth the
    paper cites (9 GB/s effective).
    """

    num_controllers: int = 2
    bandwidth_gbps: float = 12.8
    efficiency: float = 0.70
    access_latency_ns: float = 45.0

    def __post_init__(self) -> None:
        _require(self.num_controllers >= 1, "need at least one memory controller")
        _require(self.bandwidth_gbps > 0, "bandwidth must be positive")
        _require(0 < self.efficiency <= 1.0, "efficiency must be in (0, 1]")
        _require(self.access_latency_ns > 0, "DRAM latency must be positive")

    def block_service_cycles(self, freq_ghz: float, block_bytes: int) -> float:
        """Cycles one 64 B block transfer occupies a controller at peak BW."""
        bytes_per_cycle = self.bandwidth_gbps * self.efficiency / freq_ghz
        return block_bytes / bytes_per_cycle

    def latency_cycles(self, freq_ghz: float) -> int:
        """Access latency (row access + device) expressed in core cycles."""
        return round(self.access_latency_ns * freq_ghz)


@dataclass(frozen=True)
class CoreConfig:
    """Parameters of a baseline (host) core timing model."""

    name: str = "ooo"
    issue_width: int = 4
    rob_entries: int = 128
    out_of_order: bool = True

    def __post_init__(self) -> None:
        _require(self.issue_width >= 1, "issue width must be >= 1")
        _require(self.rob_entries >= self.issue_width,
                 "ROB must hold at least one issue group")


#: Widx organizations, matching the paper's Figure 3 design evolution:
#: ``coupled``  — walkers hash their own keys inline (Figure 3a/3b);
#: ``private``  — each walker has its own decoupled hashing unit (Figure 3c);
#: ``shared``   — one dispatcher feeds all walkers (Figure 3d / Figure 6).
WIDX_MODES = ("coupled", "private", "shared")


#: Widx placements (Section 7): ``core`` shares the host core's MMU and
#: L1-D (the paper's design); ``llc`` sits next to the LLC with its own
#: translation logic and a dedicated low-latency buffer; ``pim`` moves the
#: walkers into the memory itself, next to the DRAM banks (the HashMem
#: design point the 2013 paper could not evaluate).
WIDX_PLACEMENTS = ("core", "llc", "pim")


@dataclass(frozen=True)
class PimConfig:
    """Near-memory (PIM) walker attachment point.

    Walkers colocated with the DRAM banks see the array directly: a node
    hop costs one bank-local row access (``bank_access_ns``, cheaper than
    the full off-chip round trip) and never traverses the LLC or the
    crossbar.  The costs of leaving the host side are explicit instead:
    ``launch_cycles`` charges the host↔PIM command exchange that arms the
    walkers (paid once per offload, on top of the normal control-block
    load), and results return to the host over the existing interconnect.
    ``walkers_per_bank`` caps how many in-flight accesses one bank
    sustains — bank conflicts serialize, which is what bounds PIM scaling.
    """

    num_banks: int = 8
    walkers_per_bank: int = 2
    launch_cycles: float = 500.0
    bank_access_ns: float = 25.0

    def __post_init__(self) -> None:
        _require(1 <= self.num_banks <= 64, "bank count must be in [1, 64]")
        _require(1 <= self.walkers_per_bank <= 16,
                 "per-bank walker limit must be in [1, 16]")
        _require(self.launch_cycles >= 0,
                 "host-to-PIM launch latency must be >= 0")
        _require(self.bank_access_ns > 0,
                 "bank access latency must be positive")

    def bank_latency_cycles(self, freq_ghz: float) -> int:
        """Bank-local row access latency expressed in core cycles."""
        return round(self.bank_access_ns * freq_ghz)


@dataclass(frozen=True)
class WidxConfig:
    """Widx accelerator organization (Figures 3 and 6)."""

    num_walkers: int = 4
    queue_entries: int = 2
    mode: str = "shared"
    num_producers: int = 1
    placement: str = "core"

    def __post_init__(self) -> None:
        _require(1 <= self.num_walkers <= 16, "walker count must be in [1, 16]")
        _require(self.queue_entries >= 1, "queues need at least one entry")
        _require(self.mode in WIDX_MODES,
                 f"Widx mode must be one of {WIDX_MODES}")
        _require(self.num_producers == 1, "the paper uses a single output producer")
        _require(self.placement in WIDX_PLACEMENTS,
                 f"Widx placement must be one of {WIDX_PLACEMENTS}")

    @property
    def num_units(self) -> int:
        """Total Widx units (for area/power): walkers + hashers + producer."""
        if self.mode == "coupled":
            return self.num_walkers + self.num_producers
        if self.mode == "private":
            return 2 * self.num_walkers + self.num_producers
        return self.num_walkers + 1 + self.num_producers


@dataclass(frozen=True)
class SystemConfig:
    """Full simulated system: Table 2 plus the Widx organization."""

    freq_ghz: float = 2.0
    num_cores: int = 4
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, block_bytes=64, associativity=8,
        latency_cycles=2, ports=2, mshrs=10))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=4 * 1024 * 1024, block_bytes=64, associativity=16,
        latency_cycles=6, ports=4, mshrs=64))
    tlb: TlbConfig = field(default_factory=TlbConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    interconnect_cycles: int = 4
    ooo: CoreConfig = field(default_factory=lambda: CoreConfig(
        name="ooo", issue_width=4, rob_entries=128, out_of_order=True))
    inorder: CoreConfig = field(default_factory=lambda: CoreConfig(
        name="inorder", issue_width=2, rob_entries=2, out_of_order=False))
    widx: WidxConfig = field(default_factory=WidxConfig)
    pim: PimConfig = field(default_factory=PimConfig)

    def __post_init__(self) -> None:
        _require(self.freq_ghz > 0, "frequency must be positive")
        _require(self.num_cores >= 1, "need at least one core")
        _require(self.interconnect_cycles >= 0, "interconnect latency must be >= 0")
        _require(self.l1d.block_bytes == self.llc.block_bytes,
                 "L1 and LLC must share one block size")

    def with_walkers(self, num_walkers: int) -> "SystemConfig":
        """A copy of this config with a different Widx walker count."""
        return replace(self, widx=replace(self.widx, num_walkers=num_walkers))

    def with_widx(self, **kwargs: object) -> "SystemConfig":
        """A copy of this config with Widx fields overridden."""
        return replace(self, widx=replace(self.widx, **kwargs))

    def with_pim(self, **kwargs: object) -> "SystemConfig":
        """A copy of this config with PIM fields overridden."""
        return replace(self, pim=replace(self.pim, **kwargs))

    def canonical_dict(self) -> dict:
        """A plain nested dict of every parameter, for stable serialization."""
        return asdict(self)

    def cache_key(self) -> str:
        """Content hash identifying this exact configuration.

        Equal configs hash equally regardless of how they were built
        (``SystemConfig()`` vs ``replace``-chains), so the persistent
        measurement cache survives process restarts and config round-trips.
        """
        return stable_digest(self.canonical_dict())


DEFAULT_CONFIG = SystemConfig()

#: Walker counts evaluated throughout Section 6 of the paper.
EVALUATED_WALKER_COUNTS = (1, 2, 4)


def table2_rows() -> list[tuple[str, str]]:
    """The paper's Table 2 as (parameter, value) rows for reporting."""
    cfg = DEFAULT_CONFIG
    return [
        ("Technology", f"40nm, {cfg.freq_ghz:g}GHz"),
        ("CMP Features", f"{cfg.num_cores} cores"),
        ("Core Types",
         f"In-order: {cfg.inorder.issue_width}-wide; "
         f"OoO: {cfg.ooo.issue_width}-wide, {cfg.ooo.rob_entries}-entry ROB"),
        ("L1-I/D Caches",
         f"{cfg.l1d.size_bytes // 1024}KB, split, {cfg.l1d.ports} ports, "
         f"{cfg.l1d.block_bytes}B blocks, {cfg.l1d.mshrs} MSHRs, "
         f"{cfg.l1d.latency_cycles}-cycle load-to-use latency"),
        ("LLC", f"{cfg.llc.size_bytes // (1024 * 1024)}MB, "
                f"{cfg.llc.latency_cycles}-cycle hit latency"),
        ("TLB", f"{cfg.tlb.in_flight} in-flight translations"),
        ("Interconnect", f"Crossbar, {cfg.interconnect_cycles}-cycle latency"),
        ("Main Memory",
         f"{cfg.dram.num_controllers} MCs, BW: {cfg.dram.bandwidth_gbps}GB/s, "
         f"{cfg.dram.access_latency_ns:g}ns access latency"),
    ]
