"""Inputs to the analytical model, derived from Table 2 and Listing 1.

The paper's model assumes 64-bit keys (eight per 64 B cache block), key
loads that miss all the way to memory on the first touch of each block,
and node accesses that always miss the L1 but may hit the LLC (the LLC
miss ratio is the model's free parameter).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig, DEFAULT_CONFIG


@dataclass(frozen=True)
class ModelParams:
    """Per-operation costs for the hashing unit (H) and walker (W)."""

    # --- machine (from Table 2) ---------------------------------------
    l1_latency: float = 2.0
    llc_latency: float = 14.0      # 6-cycle LLC + 2x 4-cycle crossbar
    dram_latency: float = 104.0    # 45 ns at 2 GHz + LLC/crossbar path
    l1_ports: int = 2
    mshrs: int = 10
    mc_blocks_per_cycle: float = 0.0703  # 9 GB/s effective / 64 B / 2 GHz

    # --- hashing one key (H) ------------------------------------------
    keys_per_block: int = 8        # 64-bit keys
    hash_mem_ops: float = 1.0      # one key load per hash
    hash_comp_cycles: float = 8.0  # fused-op mixing + mask + bucket address
    hash_mlp: float = 1.0          # one outstanding key-block fetch (Eq. 3)

    # --- walking one node (W) -----------------------------------------
    walk_mem_ops: float = 2.0      # key slot + next pointer
    walk_blocks_per_node: float = 1.0  # both slots share the node's block
    walk_comp_cycles: float = 4.0  # compare, branch, address bump
    walk_mlp: float = 1.0          # pointer chasing is serial

    @classmethod
    def from_config(cls, config: SystemConfig = DEFAULT_CONFIG,
                    **overrides: float) -> "ModelParams":
        """Derive the machine-side parameters from a system config."""
        llc_total = (config.llc.latency_cycles
                     + 2 * config.interconnect_cycles)
        dram_total = (config.dram.latency_cycles(config.freq_ghz)
                      + llc_total)
        bw = (config.dram.bandwidth_gbps * config.dram.efficiency
              / config.llc.block_bytes / config.freq_ghz)
        values = dict(
            l1_latency=float(config.l1d.latency_cycles),
            llc_latency=float(llc_total),
            dram_latency=float(dram_total),
            l1_ports=config.l1d.ports,
            mshrs=config.l1d.mshrs,
            mc_blocks_per_cycle=bw,
        )
        values.update(overrides)
        return cls(**values)

    # --- Equation 1 inputs --------------------------------------------

    def hash_amat(self, llc_miss_ratio_keys: float = 1.0) -> float:
        """AMAT of the key stream: 1-in-8 loads miss to memory.

        The paper's model sends the first access to each key block all the
        way to main memory (``llc_miss_ratio_keys`` = 1); the remaining
        seven hit the L1.
        """
        miss_fraction = 1.0 / self.keys_per_block
        miss_cost = (self.llc_latency
                     + llc_miss_ratio_keys * (self.dram_latency - self.llc_latency))
        return (1.0 - miss_fraction) * self.l1_latency + miss_fraction * miss_cost

    def walk_amat(self, llc_miss_ratio: float) -> float:
        """AMAT of a node access: always misses L1, LLC miss ratio given."""
        return (self.llc_latency
                + llc_miss_ratio * (self.dram_latency - self.llc_latency))
