"""The paper's first-order analytical model (Section 3.2).

Implements Equations 1-6 and generates the data series behind Figures 4a,
4b, 4c (L1 bandwidth, MSHR and off-chip bandwidth constraints) and 5a-5c
(dispatcher-to-walker balance), using the Table 2 machine parameters.
"""

from .params import ModelParams
from .analytical import (
    AnalyticalModel,
    fig4a_series,
    fig4b_series,
    fig4c_series,
    fig5_series,
    max_walkers_by_mshrs,
)

__all__ = [
    "ModelParams",
    "AnalyticalModel",
    "fig4a_series",
    "fig4b_series",
    "fig4c_series",
    "fig5_series",
    "max_walkers_by_mshrs",
]
