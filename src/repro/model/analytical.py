"""Equations 1-6 and the Figure 4/5 series generators.

Equation numbering follows Section 3.2 of the paper:

1. ``Cycles = AMAT * MemOps + CompCycles`` per operation (hash one key or
   walk one node), computed separately for H and W;
2. ``MemOps/cycle = [(MemOps/Cycles)_H + (MemOps/Cycles)_W] * N <= L1 ports``;
3. ``L1Misses = max(MLP_H + MLP_W) * N <= MSHRs``;
4. ``OffChipDemands = L1MR * LLCMR * MemOps`` per operation;
5. ``WalkersPerMC <= BW_MC / [(OffChipDemands/Cycles)_H + (OffChipDemands/Cycles)_W]``;
6. ``WalkerUtilization = (Cycles_node * Nodes/bucket) / (Cycles_hash * N)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .params import ModelParams

MissSeries = List[Tuple[float, float]]  # (llc miss ratio, value)


@dataclass(frozen=True)
class AnalyticalModel:
    """The Section 3.2 model, evaluated for one machine parameterization."""

    params: ModelParams = ModelParams()

    # --- Equation 1 ----------------------------------------------------

    def hash_cycles(self) -> float:
        """Cycles to hash one key on a decoupled hashing unit."""
        p = self.params
        return p.hash_amat() * p.hash_mem_ops + p.hash_comp_cycles

    def walk_cycles(self, llc_miss_ratio: float) -> float:
        """Cycles to walk one node; the second slot load hits the L1
        (both slots share the node's cache block)."""
        p = self.params
        long_access = p.walk_amat(llc_miss_ratio)
        extra_l1 = (p.walk_mem_ops - p.walk_blocks_per_node) * p.l1_latency
        return long_access + extra_l1 + p.walk_comp_cycles

    # --- Equation 2: L1-D bandwidth -------------------------------------

    def mem_ops_per_cycle(self, llc_miss_ratio: float, walkers: int) -> float:
        """Aggregate L1 accesses per cycle for N walkers + hashing units."""
        p = self.params
        hash_rate = p.hash_mem_ops / self.hash_cycles()
        walk_rate = p.walk_mem_ops / self.walk_cycles(llc_miss_ratio)
        return (hash_rate + walk_rate) * walkers

    def l1_bandwidth_ok(self, llc_miss_ratio: float, walkers: int) -> bool:
        """Equation 2 check: demand fits the L1's ports."""
        return (self.mem_ops_per_cycle(llc_miss_ratio, walkers)
                <= self.params.l1_ports)

    # --- Equation 3: MSHRs ----------------------------------------------

    def outstanding_misses(self, walkers: int) -> float:
        """Peak concurrent L1 misses for N walker+hasher pairs."""
        p = self.params
        return (p.hash_mlp + p.walk_mlp) * walkers

    def mshrs_ok(self, walkers: int) -> bool:
        """Equation 3 check: outstanding misses fit the MSHRs."""
        return self.outstanding_misses(walkers) <= self.params.mshrs

    # --- Equations 4-5: off-chip bandwidth ------------------------------

    def offchip_demand_hash(self) -> float:
        """Blocks demanded from memory per key hashed (Equation 4).

        L1MR = 1/8 (eight keys per block), LLCMR = 1 (first touch misses
        everywhere, per the paper's model).
        """
        p = self.params
        return (1.0 / p.keys_per_block) * 1.0 * p.hash_mem_ops

    def offchip_demand_walk(self, llc_miss_ratio: float) -> float:
        """Blocks demanded per node walked: L1MR = 1, one block per node."""
        return llc_miss_ratio * self.params.walk_blocks_per_node

    def walkers_per_mc(self, llc_miss_ratio: float) -> float:
        """Equation 5: walkers one memory controller can sustain."""
        p = self.params
        demand_rate = (self.offchip_demand_hash() / self.hash_cycles()
                       + self.offchip_demand_walk(llc_miss_ratio)
                       / self.walk_cycles(llc_miss_ratio))
        if demand_rate == 0:
            return float("inf")
        return p.mc_blocks_per_cycle / demand_rate

    # --- Equation 6: dispatcher balance ----------------------------------

    def walker_utilization(self, llc_miss_ratio: float, walkers: int,
                           nodes_per_bucket: float) -> float:
        """Fraction of time a walker is busy given one shared dispatcher."""
        busy = self.walk_cycles(llc_miss_ratio) * nodes_per_bucket
        supply = self.hash_cycles() * walkers
        return min(1.0, busy / supply)

    def dispatcher_feeds(self, llc_miss_ratio: float, nodes_per_bucket: float,
                         utilization_floor: float = 0.8) -> int:
        """Largest walker count one dispatcher feeds at >= the floor."""
        n = 1
        while self.walker_utilization(llc_miss_ratio, n + 1,
                                      nodes_per_bucket) >= utilization_floor:
            n += 1
            if n >= 64:
                break
        return n


def _miss_ratios(steps: int = 11) -> List[float]:
    return [round(i / (steps - 1), 3) for i in range(steps)]


def fig4a_series(model: AnalyticalModel = AnalyticalModel(),
                 walker_counts: Sequence[int] = (1, 2, 4, 8, 10),
                 ) -> Dict[int, MissSeries]:
    """Figure 4a: memory ops per cycle vs LLC miss ratio, per walker count."""
    return {
        n: [(m, model.mem_ops_per_cycle(m, n)) for m in _miss_ratios()]
        for n in walker_counts
    }


def fig4b_series(model: AnalyticalModel = AnalyticalModel(),
                 max_walkers: int = 10) -> List[Tuple[int, float]]:
    """Figure 4b: outstanding L1 misses vs number of walkers."""
    return [(n, model.outstanding_misses(n))
            for n in range(1, max_walkers + 1)]


def fig4c_series(model: AnalyticalModel = AnalyticalModel()) -> MissSeries:
    """Figure 4c: walkers per memory controller vs LLC miss ratio."""
    return [(m, model.walkers_per_mc(m)) for m in _miss_ratios()[1:]]


def fig5_series(model: AnalyticalModel = AnalyticalModel(),
                walker_counts: Sequence[int] = (2, 4, 8),
                nodes_per_bucket: Sequence[int] = (1, 2, 3),
                ) -> Dict[int, Dict[int, MissSeries]]:
    """Figures 5a-5c: walker utilization vs LLC miss ratio.

    Returns ``{nodes_per_bucket: {walkers: [(miss, util), ...]}}``.
    """
    return {
        b: {
            n: [(m, model.walker_utilization(m, n, b))
                for m in _miss_ratios()]
            for n in walker_counts
        }
        for b in nodes_per_bucket
    }


def max_walkers_by_mshrs(model: AnalyticalModel = AnalyticalModel()) -> int:
    """The paper's headline constraint: ~4 walkers fit the MSHR budget."""
    n = 1
    while model.mshrs_ok(n + 1):
        n += 1
        if n >= 64:
            break
    return n
