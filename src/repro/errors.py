"""Exception hierarchy for the Widx reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class SimulationHang(SimulationError):
    """The simulation stopped making progress (deadlock, livelock or a
    blown cycle/wall-clock budget).

    ``diagnostics`` carries a human-readable dump of the engine state at
    detection time: runnable processes and what they wait on, pending
    events, and the occupancy of every monitored resource.
    """

    def __init__(self, message: str, diagnostics: str = "") -> None:
        super().__init__(message)
        self.diagnostics = diagnostics

    def __str__(self) -> str:
        base = super().__str__()
        if self.diagnostics:
            return f"{base}\n{self.diagnostics}"
        return base


class ProcessError(SimulationError):
    """An exception escaped a process generator.

    Raised by :meth:`repro.sim.engine.Engine.run` when the failure was not
    handled by any waiting process; ``process_name`` identifies the process
    whose generator raised, and ``__cause__`` is the original exception.
    (The engine re-raises the *original* exception — annotated with the
    process name — whenever its type matters to callers; this wrapper
    exists for failures with no better home, e.g. a broken callback.)
    """

    def __init__(self, message: str, process_name: str = "") -> None:
        super().__init__(message)
        self.process_name = process_name


class InvariantViolation(SimulationError):
    """An end-of-run invariant check failed (leaked MSHR slots, undrained
    queues, live processes after the event queue emptied).

    A measurement that trips this produced garbage cycles; the harness
    fails it loudly instead of reporting the numbers.
    """


class TraceError(SimulationError):
    """A component emitted ill-nested trace events (an ``end`` without a
    matching ``begin``, a mismatched span name, or time running backwards).

    Tracing is strictly observational, so this always indicates a bug in
    the instrumented component, not in the workload.
    """


class MeasurementFailed(ReproError):
    """A measurement point exhausted its retries and was marked failed.

    Carried by the campaign failure manifest; figure drivers asking for a
    poisoned point get this immediately instead of re-simulating (or
    re-hanging) in-process.
    """


class CampaignInterrupted(ReproError):
    """The user interrupted a campaign (Ctrl-C).

    Completed points were already flushed to the measurement cache, so the
    message carries a resume hint instead of a multiprocessing traceback.
    """

    def __init__(self, message: str, completed: int = 0, total: int = 0) -> None:
        super().__init__(message)
        self.completed = completed
        self.total = total


class MemoryError_(ReproError):
    """An access to the simulated memory system was malformed.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class SegmentationFault(MemoryError_):
    """An access fell outside every mapped segment of the address space."""


class AlignmentError(MemoryError_):
    """An access was not naturally aligned for its size."""


class AssemblerError(ReproError):
    """A Widx assembly program failed to parse or encode."""


class WidxFault(ReproError):
    """A fault raised during Widx execution (aborts the offload).

    Per the paper (Section 4.3), Widx provides an atomic all-or-nothing
    execution model: any fault other than a TLB miss aborts the offload and
    the indexing operation re-executes on the host core.
    """


class RegisterBudgetExceeded(AssemblerError):
    """A Widx program needs more than the 32 architectural registers.

    The paper notes that functions exceeding the register budget cannot be
    mapped because the architecture has no push/pop support.
    """


class PlanError(ReproError):
    """A query plan is malformed or references unknown tables/columns."""


class WorkloadError(ReproError):
    """A workload specification is invalid or unknown."""


class ServeError(ReproError):
    """A serving-layer specification (arrival process, scheduling policy,
    service model) is invalid or inconsistent."""
