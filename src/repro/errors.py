"""Exception hierarchy for the Widx reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class MemoryError_(ReproError):
    """An access to the simulated memory system was malformed.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class SegmentationFault(MemoryError_):
    """An access fell outside every mapped segment of the address space."""


class AlignmentError(MemoryError_):
    """An access was not naturally aligned for its size."""


class AssemblerError(ReproError):
    """A Widx assembly program failed to parse or encode."""


class WidxFault(ReproError):
    """A fault raised during Widx execution (aborts the offload).

    Per the paper (Section 4.3), Widx provides an atomic all-or-nothing
    execution model: any fault other than a TLB miss aborts the offload and
    the indexing operation re-executes on the host core.
    """


class RegisterBudgetExceeded(AssemblerError):
    """A Widx program needs more than the 32 architectural registers.

    The paper notes that functions exceeding the register budget cannot be
    mapped because the architecture has no push/pop support.
    """


class PlanError(ReproError):
    """A query plan is malformed or references unknown tables/columns."""


class WorkloadError(ReproError):
    """A workload specification is invalid or unknown."""
