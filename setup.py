"""Legacy setup shim: this environment has no `wheel` package and no network,
so editable installs must use the classic `setup.py develop` path."""

from setuptools import setup

setup()
