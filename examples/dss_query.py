#!/usr/bin/env python3
"""A DSS query end-to-end: plan, profile, accelerate, project.

Recreates the paper's Figure 1 scenario on the mini column store: a
filtered dimension table is indexed on the join key, a fact table probes
it, the result is aggregated.  The executor attributes modelled cycles to
the Figure 2a categories; the index probe is then offloaded to Widx, and
the indexing speedup is projected onto the whole query (Amdahl, the
paper's Section 6.2 query-level results).

Run:  python examples/dss_query.py
"""

from repro import DEFAULT_CONFIG, QueryExecutor, offload_probe
from repro.cpu.timing import measure_indexing
from repro.db.datagen import build_pair_tables
from repro.db.operators.hashjoin import hash_join
from repro.db.operators.scan import Predicate
from repro.db.plan import AggregateNode, HashJoinNode, ScanNode, SortNode
from repro.harness.fig10 import amdahl_query_speedup
from repro.mem.layout import AddressSpace

BUILD_ROWS = 20_000
PROBE_ROWS = 12_000


def main() -> None:
    print("SQL: SELECT count(*) FROM A, B WHERE A.age = B.age "
          "AND A.age > 100 ORDER BY payload\n")
    dimension, fact = build_pair_tables(BUILD_ROWS, PROBE_ROWS,
                                        match_fraction=0.85, seed=2024)
    executor = QueryExecutor({"A": dimension, "B": fact})
    plan = AggregateNode(
        SortNode(
            HashJoinNode(ScanNode("A", Predicate("age", ">", 100)),
                         ScanNode("B"), "age", "age", payload_column="id",
                         indirect=True),
            key="payload"),
        {"matches": "count:*"})
    print("Physical plan:")
    print(plan.pretty(1))

    profile, result = executor.execute_with_result(plan, "example-query")
    print(f"\nResult: {int(result.column('matches').values[0])} matching "
          f"tuples")
    print("Modelled cycle breakdown (the Figure 2a categories):")
    for category, fraction in profile.breakdown().items():
        bar = "#" * round(40 * fraction)
        print(f"  {category:>8} {fraction:>6.1%} {bar}")

    # Re-run the probe through the detailed simulators.
    print("\nDetailed simulation of the index probe (MonetDB-style "
          "indirect index):")
    space = AddressSpace()
    join = hash_join(space, dimension, fact, "age", "age",
                     payload_column="id", indirect=True)
    baseline = measure_indexing(join.index, join.probe_keys, core="ooo",
                                warmup_probes=500, measure_probes=2000)
    accelerated = offload_probe(join.index, join.probe_keys,
                                config=DEFAULT_CONFIG, probes=2500)
    indexing_speedup = (baseline.cycles_per_tuple
                        / accelerated.cycles_per_tuple)
    print(f"  OoO baseline: {baseline.cycles_per_tuple:.1f} cycles/tuple")
    print(f"  Widx (4 walkers): {accelerated.cycles_per_tuple:.1f} "
          f"cycles/tuple  (validated: {accelerated.validated})")
    print(f"  indexing speedup: {indexing_speedup:.2f}x")

    query_speedup = amdahl_query_speedup(profile.index_fraction,
                                         indexing_speedup)
    print(f"\nQuery-level projection: indexing is "
          f"{profile.index_fraction:.0%} of this query, so the whole query "
          f"speeds up {query_speedup:.2f}x (Amdahl)")


if __name__ == "__main__":
    main()
