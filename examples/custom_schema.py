#!/usr/bin/env python3
"""Programming Widx for a custom schema.

Widx's whole point (vs a fixed-function unit) is that a DBMS developer can
target any node layout and hash function.  This example defines a schema
Widx was never hard-coded for — 8-byte keys with a 64-byte node stride and
a custom 3-step hash — generates the three unit programs, prints the
assembly, and runs the offload, validating against the software probe.

Run:  python examples/custom_schema.py
"""

import numpy as np

from repro import DEFAULT_CONFIG
from repro.db.column import Column
from repro.db.datagen import make_rng, probe_keys, unique_keys
from repro.db.hashfn import HashSpec, HashStep
from repro.db.hashtable import HashIndex, choose_num_buckets
from repro.db.node import NodeLayout
from repro.db.types import DataType
from repro.mem.layout import AddressSpace
from repro.widx.offload import offload_probe

# A padded analytics schema: wide nodes (one per cache block), 8 B keys.
CUSTOM_LAYOUT = NodeLayout(
    name="padded64",
    stride=64,
    key_bytes=8,
    payload_bytes=8,
    key_offset=0,
    payload_offset=8,
    next_offset=16,
    indirect=False,
    empty_sentinel=(1 << 64) - 1,
)

# A custom (deliberately short) mixing function — three fused instructions.
CUSTOM_HASH = HashSpec("custom3", (
    HashStep("xor_shr", amount=33),
    HashStep("add_shl", amount=5),
    HashStep("xor_shr", amount=17),
))


def main() -> None:
    rng = make_rng(7)
    space = AddressSpace()
    keys = unique_keys(5_000, 8, rng)
    index = HashIndex(space, CUSTOM_LAYOUT, choose_num_buckets(5_000),
                      CUSTOM_HASH, capacity=5_000, name="custom")
    for row, key in enumerate(keys):
        index.insert(int(key), row + 1)
    print(f"Custom schema: {CUSTOM_LAYOUT.describe()}")
    print(f"Custom hash:   {CUSTOM_HASH.name} "
          f"({CUSTOM_HASH.compute_cycles} fused instructions)\n")

    column = Column("probes", DataType.U64,
                    probe_keys(keys, 1_500, 0.8, 8, rng))
    column.materialize(space)

    outcome = offload_probe(index, column, config=DEFAULT_CONFIG)
    print("Generated dispatcher program (.role H):")
    print(outcome.programs["dispatcher"].source)
    print("\nGenerated walker program (.role W):")
    print(outcome.programs["walker"].source)

    print(f"\nOffload complete: {outcome.matches} matches over "
          f"{outcome.run.tuples} probes, "
          f"{outcome.cycles_per_tuple:.1f} cycles/tuple, "
          f"validated: {outcome.validated}")


if __name__ == "__main__":
    main()
