#!/usr/bin/env python3
"""The four-threaded kernel on the Table 2 CMP.

The paper runs the hash-join kernel with four threads: four cores, each
with its own Widx complex, sharing one 4 MB LLC and two DDR3 memory
controllers.  This example sweeps thread counts on the Large index and
shows the off-chip bandwidth wall the Section 3.2 model predicts
(Figure 4c: ~4-5 walkers per controller at high LLC miss ratios).

Run:  python examples/multicore.py
"""

from repro.cmp import run_multicore_offload
from repro.config import DEFAULT_CONFIG
from repro.workloads.hashjoin_kernel import build_kernel_workload

PROBES = 4_000


def main() -> None:
    print("Building the Large kernel index (1M tuples, DRAM-resident)...")
    index, probe_keys = build_kernel_workload("Large", probe_count=PROBES)
    print(f"  footprint: {index.footprint_bytes // (1 << 20)} MB "
          f"(LLC is {DEFAULT_CONFIG.llc.size_bytes // (1 << 20)} MB)\n")

    header = (f"{'threads':>7} {'c/tuple':>9} {'speedup':>8} "
              f"{'per-walker eff.':>15} {'LLC miss':>9} {'DRAM util':>10}")
    print(header)
    print("-" * len(header))
    base = None
    for threads in (1, 2, 4):
        result = run_multicore_offload(index, probe_keys,
                                       config=DEFAULT_CONFIG,
                                       threads=threads, probes=PROBES)
        if base is None:
            base = result.cycles_per_tuple
        speedup = base / result.cycles_per_tuple
        efficiency = speedup / threads
        print(f"{threads:>7} {result.cycles_per_tuple:>9.2f} "
              f"{speedup:>7.2f}x {efficiency:>14.0%} "
              f"{result.llc_miss_ratio:>9.2f} "
              f"{result.dram_utilization:>10.2f}")
    print("\nFour cores x four walkers push the two memory controllers "
          "toward saturation —\nthe end-to-end form of the paper's "
          "Figure 4c bandwidth constraint.")


if __name__ == "__main__":
    main()
