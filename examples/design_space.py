#!/usr/bin/env python3
"""Exploring the Widx design space.

Part 1 evaluates the paper's Section 3.2 analytical model (Figures 4-5):
what limits walker count, and how many walkers one dispatcher can feed.

Part 2 measures the Figure 3 design progression end-to-end on the Medium
kernel: one coupled unit -> parallel coupled walkers -> private decoupled
hashing units -> the shared dispatcher that is Widx.

Run:  python examples/design_space.py
"""

from repro import DEFAULT_CONFIG, build_kernel_workload, offload_probe
from repro.model import AnalyticalModel, max_walkers_by_mshrs


def analytical_part() -> None:
    model = AnalyticalModel()
    print("=== Analytical bottleneck model (Section 3.2) ===")
    print(f"hash one key: {model.hash_cycles():.1f} cycles; "
          f"walk one node: {model.walk_cycles(0.0):.0f} (LLC-resident) to "
          f"{model.walk_cycles(1.0):.0f} (DRAM) cycles")
    print(f"MSHR budget supports {max_walkers_by_mshrs(model)} walkers "
          f"(Equation 3)")
    print("L1 pressure at miss ratio 0 (Equation 2): "
          + ", ".join(f"{n}w={model.mem_ops_per_cycle(0.0, n):.2f}"
                      for n in (2, 4, 6, 8, 10))
          + " mem-ops/cycle (2 ports available)")
    print("walkers per memory controller (Equation 5): "
          + ", ".join(f"miss={m:.1f}: {model.walkers_per_mc(m):.1f}"
                      for m in (0.1, 0.5, 1.0)))
    print("walker utilization with one dispatcher (Equation 6, 4 walkers):")
    for depth in (1, 2, 3):
        series = ", ".join(
            f"miss={m:.1f}: {model.walker_utilization(m, 4, depth):.2f}"
            for m in (0.0, 0.3, 0.6, 1.0))
        print(f"  {depth} node(s)/bucket: {series}")


def measured_part() -> None:
    print("\n=== Measured design progression (Figure 3a -> 3d) ===")
    index, probe_keys = build_kernel_workload("Medium", probe_count=2_000)
    points = [
        ("3a  single coupled unit", "coupled", 1),
        ("3b  4 coupled walkers", "coupled", 4),
        ("3c  4 walkers + private hashing", "private", 4),
        ("3d  4 walkers + shared dispatcher (Widx)", "shared", 4),
    ]
    baseline = None
    for name, mode, walkers in points:
        config = DEFAULT_CONFIG.with_widx(mode=mode, num_walkers=walkers)
        outcome = offload_probe(index, probe_keys, config=config)
        if baseline is None:
            baseline = outcome.cycles_per_tuple
        print(f"  {name:<45} {outcome.cycles_per_tuple:7.1f} c/tuple  "
              f"({baseline / outcome.cycles_per_tuple:4.2f}x, "
              f"{config.widx.num_units} units)")


if __name__ == "__main__":
    analytical_part()
    measured_part()
