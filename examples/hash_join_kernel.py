#!/usr/bin/env python3
"""The hash-join kernel study (the paper's Figure 8, at example scale).

Sweeps the Small/Medium/Large kernel indexes across 1/2/4 Widx walkers,
printing the walker cycle breakdown (Comp/Mem/TLB/Idle) and the speedup
over the out-of-order baseline — the paper's Figure 8a/8b shapes.

Run:  python examples/hash_join_kernel.py  [--probes N]
"""

import argparse

from repro import DEFAULT_CONFIG, build_kernel_workload, measure_indexing, \
    offload_probe


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--probes", type=int, default=2_500,
                        help="probe keys per configuration")
    args = parser.parse_args()

    header = (f"{'size':>8} {'walkers':>7} {'c/tuple':>9} {'comp':>7} "
              f"{'mem':>7} {'tlb':>6} {'idle':>6} {'speedup':>8}")
    print(header)
    print("-" * len(header))
    for size in ("Small", "Medium", "Large"):
        index, probe_keys = build_kernel_workload(size,
                                                  probe_count=args.probes)
        baseline = measure_indexing(
            index, probe_keys, core="ooo", warmup_probes=args.probes // 5,
            measure_probes=args.probes - args.probes // 5)
        for walkers in (1, 2, 4):
            config = DEFAULT_CONFIG.with_walkers(walkers)
            outcome = offload_probe(index, probe_keys, config=config)
            b = outcome.run.walker_cycles_per_tuple()
            speedup = baseline.cycles_per_tuple / outcome.cycles_per_tuple
            print(f"{size:>8} {walkers:>7} {outcome.cycles_per_tuple:>9.1f} "
                  f"{b.comp:>7.1f} {b.mem:>7.1f} {b.tlb:>6.2f} "
                  f"{b.idle + b.queue:>6.2f} {speedup:>7.2f}x")
        print(f"{'':8} (OoO baseline: "
              f"{baseline.cycles_per_tuple:.1f} cycles/tuple, "
              f"L1 miss {baseline.l1_miss_ratio:.2f}, "
              f"LLC miss {baseline.llc_miss_ratio:.2f})")


if __name__ == "__main__":
    main()
