#!/usr/bin/env python3
"""Quickstart: accelerate a hash-index probe with Widx.

Builds a small hash index in simulated memory, probes it with the Widx
accelerator (one dispatcher, four walkers, one output producer), validates
the accelerated result against the software probe loop, and compares
indexing throughput against the out-of-order baseline core.

Run:  python examples/quickstart.py
"""

from repro import DEFAULT_CONFIG, build_kernel_workload, measure_indexing, \
    offload_probe

PROBES = 2_000


def main() -> None:
    print("Building the Small hash-join kernel index (4K tuples)...")
    index, probe_keys = build_kernel_workload("Small", probe_count=PROBES)
    stats = index.stats()
    print(f"  index: {stats.num_keys} keys in {stats.num_buckets} buckets "
          f"({stats.nodes_per_used_bucket:.2f} nodes/bucket, "
          f"{index.footprint_bytes // 1024} KB)")

    print("\nOffloading the bulk probe to Widx (4 walkers)...")
    outcome = offload_probe(index, probe_keys, config=DEFAULT_CONFIG)
    print(f"  probes: {outcome.run.tuples}, matches: {outcome.matches}, "
          f"validated against software probe: {outcome.validated}")
    print(f"  Widx cycles/tuple: {outcome.cycles_per_tuple:.1f}")

    breakdown = outcome.run.walker_cycles_per_tuple()
    print(f"  walker cycles/tuple: comp={breakdown.comp:.1f} "
          f"mem={breakdown.mem:.1f} tlb={breakdown.tlb:.1f} "
          f"idle={breakdown.idle + breakdown.queue:.1f}")

    print("\nMeasuring the OoO baseline on the same index...")
    baseline = measure_indexing(index, probe_keys, core="ooo",
                                warmup_probes=400,
                                measure_probes=PROBES - 400)
    print(f"  OoO cycles/tuple: {baseline.cycles_per_tuple:.1f} "
          f"(±{baseline.relative_error:.1%} at 95% confidence)")

    speedup = baseline.cycles_per_tuple / outcome.cycles_per_tuple
    print(f"\nWidx indexing speedup over the OoO core: {speedup:.2f}x")


if __name__ == "__main__":
    main()
