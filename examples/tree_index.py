#!/usr/bin/env python3
"""Accelerating B+-tree lookups — the paper's Section 7 extension.

"Widx can easily be extended to accelerate other index structures, such as
balanced trees, which are also common in DBMSs."  This example bulk-loads
a B+-tree in simulated memory, shows the generated Widx tree-descent
program, and compares accelerated tree lookups against hash-index probes
over the same keys.

Run:  python examples/tree_index.py
"""

import numpy as np

from repro import DEFAULT_CONFIG
from repro.db.btree import BPlusTree
from repro.db.column import Column
from repro.db.datagen import make_rng, unique_keys
from repro.db.hashfn import ROBUST_HASH_32
from repro.db.hashtable import HashIndex, choose_num_buckets
from repro.db.node import KERNEL_LAYOUT
from repro.db.types import DataType
from repro.mem.layout import AddressSpace
from repro.widx.offload import offload_probe, offload_tree_search

N_KEYS = 60_000
N_PROBES = 2_000


def main() -> None:
    rng = make_rng(11)
    keys = unique_keys(N_KEYS, 4, rng)
    probe_values = rng.choice(keys, N_PROBES)

    tree_space = AddressSpace()
    tree = BPlusTree(tree_space, keys.tolist(),
                     list(range(1, N_KEYS + 1)))
    stats = tree.stats()
    print(f"B+-tree: {stats.num_keys} keys, height {stats.height}, "
          f"{stats.leaves} leaves + {stats.internal_nodes} internal nodes "
          f"({tree.footprint_bytes // 1024} KB)")
    low, high = sorted(keys.tolist())[100], sorted(keys.tolist())[130]
    print(f"range scan [{low}, {high}]: "
          f"{len(tree.range_scan(low, high))} keys (trees do ranges; "
          f"hash tables cannot)\n")

    tree_probes = Column("probes", DataType.U32, probe_values)
    tree_probes.materialize(tree_space)
    tree_out = offload_tree_search(tree, tree_probes, config=DEFAULT_CONFIG)
    print("Widx tree lookups (4 walkers): "
          f"{tree_out.cycles_per_tuple:.1f} cycles/tuple, "
          f"{tree_out.matches} matches, validated: {tree_out.validated}")
    print("\nGenerated tree-walker program (first 18 lines):")
    print("\n".join(tree_out.programs["walker"].source.splitlines()[:18]))

    hash_space = AddressSpace()
    index = HashIndex(hash_space, KERNEL_LAYOUT,
                      choose_num_buckets(N_KEYS), ROBUST_HASH_32,
                      capacity=N_KEYS)
    for row, key in enumerate(keys):
        index.insert(int(key), row + 1)
    hash_probes = Column("probes", DataType.U32, probe_values)
    hash_probes.materialize(hash_space)
    hash_out = offload_probe(index, hash_probes, config=DEFAULT_CONFIG)
    print(f"\nWidx hash probes (same keys): "
          f"{hash_out.cycles_per_tuple:.1f} cycles/tuple")
    ratio = tree_out.cycles_per_tuple / hash_out.cycles_per_tuple
    print(f"tree / hash cost ratio: {ratio:.2f}x — the tree pays "
          f"{stats.height} dependent node accesses per lookup vs the hash "
          f"table's ~{index.stats().nodes_per_used_bucket:.1f}")


if __name__ == "__main__":
    main()
